//! Dense LU factorization with partial pivoting.
//!
//! `DenseLu` is the reference direct solver of the stack: the sparse
//! Gilbert–Peierls solver in `msplit-direct` and the band solver in
//! [`crate::band`] are both validated against it, and the multisplitting
//! drivers fall back to it when a diagonal block is small or nearly full.

use crate::matrix::DenseMatrix;
use crate::norms::{inf_norm, matrix_inf_norm};
use crate::DenseError;

/// Error alias kept for API symmetry with the sparse solver.
pub type LuError = DenseError;

/// LU factorization with partial (row) pivoting of a square dense matrix.
///
/// The factorization satisfies `P A = L U` where `P` is a row permutation,
/// `L` is unit lower triangular and `U` is upper triangular.  Both factors
/// are stored packed in a single matrix: the strictly lower part holds `L`
/// (without its unit diagonal) and the upper part holds `U`.
#[derive(Debug, Clone)]
pub struct DenseLu {
    /// Packed LU factors.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row placed at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by [`DenseLu::determinant`].
    perm_sign: f64,
    /// Number of floating-point operations spent in the factorization.
    flops: u64,
}

impl DenseLu {
    /// Factorizes a square matrix with partial pivoting.
    ///
    /// Returns [`DenseError::SingularPivot`] when a column has no usable
    /// pivot (the matrix is singular to working precision).
    pub fn factorize(a: &DenseMatrix) -> Result<Self, DenseError> {
        Self::factorize_with_threshold(a, 0.0)
    }

    /// Factorizes with a caller-supplied absolute pivot threshold.
    ///
    /// A pivot whose magnitude is `<= threshold` is treated as zero.  The
    /// default threshold of `0.0` only rejects exactly zero pivots, which
    /// matches the behaviour of textbook partial pivoting.
    pub fn factorize_with_threshold(a: &DenseMatrix, threshold: f64) -> Result<Self, DenseError> {
        if !a.is_square() {
            return Err(DenseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let mut flops: u64 = 0;

        for k in 0..n {
            // Find the pivot row: largest magnitude in column k at or below k.
            let mut piv_row = k;
            let mut piv_val = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = i;
                }
            }
            if piv_val <= threshold {
                return Err(DenseError::SingularPivot {
                    column: k,
                    value: lu.get(piv_row, k),
                });
            }
            if piv_row != k {
                lu.swap_rows(piv_row, k);
                perm.swap(piv_row, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let lik = lu.get(i, k) / pivot;
                lu.set(i, k, lik);
                if lik == 0.0 {
                    continue;
                }
                // Row update: row_i -= lik * row_k for the trailing columns.
                // Split borrows: copy the pivot row tail first.
                let tail: Vec<f64> = lu.row(k)[(k + 1)..].to_vec();
                let row_i = lu.row_mut(i);
                for (offset, &ukj) in tail.iter().enumerate() {
                    row_i[k + 1 + offset] -= lik * ukj;
                }
                flops += 2 * tail.len() as u64 + 1;
            }
        }

        Ok(DenseLu {
            lu,
            perm,
            perm_sign,
            flops,
        })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Number of floating point operations performed by the factorization.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// The row permutation applied by pivoting (`perm[i]` = original index of
    /// the row now in position `i`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, DenseError> {
        let n = self.order();
        if b.len() != n {
            return Err(DenseError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Apply the permutation: pb = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower triangular L.
        for i in 0..n {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for (j, &lij) in row.iter().enumerate().take(i) {
                acc -= lij * x[j];
            }
            x[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for (j, &uij) in row.iter().enumerate().skip(i + 1) {
                acc -= uij * x[j];
            }
            let diag = row[i];
            if diag == 0.0 {
                return Err(DenseError::SingularPivot {
                    column: i,
                    value: diag,
                });
            }
            x[i] = acc / diag;
        }
        Ok(x)
    }

    /// Solves `A X = B` for a batch of right-hand sides in a single pass.
    ///
    /// Unlike calling [`DenseLu::solve`] per column, this applies the stored
    /// pivot sequence once and then streams every factor row across all
    /// columns during the forward and backward substitutions, so each packed
    /// factor row is read exactly once per sweep regardless of batch width.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, DenseError> {
        let n = self.order();
        for b in rhs {
            if b.len() != n {
                return Err(DenseError::DimensionMismatch {
                    expected: n,
                    found: b.len(),
                });
            }
        }
        // Apply the pivot permutation to every column up front.
        let mut xs: Vec<Vec<f64>> = rhs
            .iter()
            .map(|b| self.perm.iter().map(|&p| b[p]).collect())
            .collect();
        // Forward substitution with unit lower triangular L, one row pass.
        for i in 0..n {
            let row = self.lu.row(i);
            for x in xs.iter_mut() {
                let mut acc = x[i];
                for (j, &lij) in row.iter().enumerate().take(i) {
                    acc -= lij * x[j];
                }
                x[i] = acc;
            }
        }
        // Backward substitution with U, one row pass.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let diag = row[i];
            if diag == 0.0 {
                return Err(DenseError::SingularPivot {
                    column: i,
                    value: diag,
                });
            }
            for x in xs.iter_mut() {
                let mut acc = x[i];
                for (j, &uij) in row.iter().enumerate().skip(i + 1) {
                    acc -= uij * x[j];
                }
                x[i] = acc / diag;
            }
        }
        Ok(xs)
    }

    /// Solves for several right-hand sides given as columns of `b`.
    pub fn solve_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix, DenseError> {
        if b.rows() != self.order() {
            return Err(DenseError::DimensionMismatch {
                expected: self.order(),
                found: b.rows(),
            });
        }
        let mut out = DenseMatrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b.get(i, j)).collect();
            let x = self.solve(&col)?;
            for (i, xi) in x.into_iter().enumerate() {
                out.set(i, j, xi);
            }
        }
        Ok(out)
    }

    /// Reconstructs `L` as an explicit unit lower triangular matrix.
    pub fn l_factor(&self) -> DenseMatrix {
        let n = self.order();
        let mut l = DenseMatrix::identity(n);
        for i in 0..n {
            for j in 0..i {
                l.set(i, j, self.lu.get(i, j));
            }
        }
        l
    }

    /// Reconstructs `U` as an explicit upper triangular matrix.
    pub fn u_factor(&self) -> DenseMatrix {
        let n = self.order();
        let mut u = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                u.set(i, j, self.lu.get(i, j));
            }
        }
        u
    }

    /// Reconstructs `P A` from the factors (used by the property tests).
    pub fn reconstruct_pa(&self) -> DenseMatrix {
        self.l_factor()
            .gemm(&self.u_factor())
            .expect("factor shapes always agree")
    }

    /// Determinant of the original matrix, computed from the pivots.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.order() {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Crude estimate of the infinity-norm condition number using one
    /// inverse-power step (`||A||_inf * ||A^{-1} e||_inf` for a random-ish
    /// probe vector).  Good enough to flag badly conditioned blocks in the
    /// multisplitting decomposition diagnostics.
    pub fn condition_estimate(&self, a: &DenseMatrix) -> Result<f64, DenseError> {
        let n = self.order();
        let probe: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = self.solve(&probe)?;
        let inv_norm_est = inf_norm(&y) / inf_norm(&probe).max(f64::EPSILON);
        Ok(matrix_inf_norm(a) * inv_norm_est)
    }

    /// One step of iterative refinement: given a candidate solution `x`,
    /// returns an improved solution `x + A^{-1}(b - A x)`.
    pub fn refine(&self, a: &DenseMatrix, b: &[f64], x: &[f64]) -> Result<Vec<f64>, DenseError> {
        let ax = a.gemv(x)?;
        let r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, axi)| bi - axi).collect();
        let d = self.solve(&r)?;
        Ok(x.iter().zip(d.iter()).map(|(xi, di)| xi + di).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dd_matrix(n: usize, seed: u64) -> DenseMatrix {
        // Diagonally dominant => nonsingular and well conditioned.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    a.set(i, j, v);
                    row_sum += v.abs();
                }
            }
            a.set(i, i, row_sum + 1.0 + rng.gen_range(0.0..1.0));
        }
        a
    }

    #[test]
    fn factorize_and_solve_2x2() {
        let a = DenseMatrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let lu = DenseLu::factorize(&a).unwrap();
        let x = lu.solve(&[10.0, 12.0]).unwrap();
        // A x = b => x = [1, 2]
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factorize(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            DenseLu::factorize(&a),
            Err(DenseError::SingularPivot { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            DenseLu::factorize(&a),
            Err(DenseError::NotSquare { .. })
        ));
    }

    #[test]
    fn reconstruction_matches_pa() {
        let a = random_dd_matrix(12, 7);
        let lu = DenseLu::factorize(&a).unwrap();
        let pa = lu.reconstruct_pa();
        for i in 0..12 {
            let orig = lu.permutation()[i];
            for j in 0..12 {
                assert!(
                    (pa.get(i, j) - a.get(orig, j)).abs() < 1e-10,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn solve_recovers_random_solution() {
        let n = 30;
        let a = random_dd_matrix(n, 42);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.gemv(&x_true).unwrap();
        let lu = DenseLu::factorize(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            assert!((xs - xt).abs() < 1e-8);
        }
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let lu = DenseLu::factorize(&a).unwrap();
        assert!((lu.determinant() - 6.0).abs() < 1e-12);
        // Permutation sign must flip the determinant correctly.
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lub = DenseLu::factorize(&b).unwrap();
        assert!((lub.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_many_matches_one_at_a_time() {
        let a = random_dd_matrix(25, 9);
        let lu = DenseLu::factorize(&a).unwrap();
        let rhs: Vec<Vec<f64>> = (0..6)
            .map(|k| (0..25).map(|i| ((i + k) as f64 * 0.7).sin()).collect())
            .collect();
        let batch = lu.solve_many(&rhs).unwrap();
        for (b, x_batch) in rhs.iter().zip(batch.iter()) {
            let x_single = lu.solve(b).unwrap();
            // Same arithmetic order per column => bitwise identical results.
            assert_eq!(x_batch, &x_single);
        }
    }

    #[test]
    fn solve_many_rejects_bad_lengths_and_handles_empty_batch() {
        let a = random_dd_matrix(5, 2);
        let lu = DenseLu::factorize(&a).unwrap();
        assert!(lu.solve_many(&[vec![1.0; 4]]).is_err());
        assert!(lu.solve_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = random_dd_matrix(8, 3);
        let lu = DenseLu::factorize(&a).unwrap();
        let b = DenseMatrix::from_fn(8, 2, |i, j| (i + j) as f64);
        let x = lu.solve_matrix(&b).unwrap();
        let ax = a.gemm(&x).unwrap();
        for i in 0..8 {
            for j in 0..2 {
                assert!((ax.get(i, j) - b.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn refinement_does_not_degrade_solution() {
        let n = 20;
        let a = random_dd_matrix(n, 11);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.01).collect();
        let b = a.gemv(&x_true).unwrap();
        let lu = DenseLu::factorize(&a).unwrap();
        let x0 = lu.solve(&b).unwrap();
        let x1 = lu.refine(&a, &b, &x0).unwrap();
        let err0 = x0
            .iter()
            .zip(&x_true)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        let err1 = x1
            .iter()
            .zip(&x_true)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(err1 <= err0 * 10.0 + 1e-12);
    }

    #[test]
    fn condition_estimate_is_at_least_one_for_identity() {
        let a = DenseMatrix::identity(5);
        let lu = DenseLu::factorize(&a).unwrap();
        let c = lu.condition_estimate(&a).unwrap();
        assert!(c >= 0.99);
    }

    #[test]
    fn flops_counter_grows_with_size() {
        let small = DenseLu::factorize(&random_dd_matrix(5, 1)).unwrap();
        let large = DenseLu::factorize(&random_dd_matrix(40, 1)).unwrap();
        assert!(large.flops() > small.flops());
    }
}
