//! Dense LU factorization with partial pivoting.
//!
//! `DenseLu` is the reference direct solver of the stack: the sparse
//! Gilbert–Peierls solver in `msplit-direct` and the band solver in
//! [`crate::band`] are both validated against it, and the multisplitting
//! drivers fall back to it when a diagonal block is small or nearly full.
//!
//! # Kernel design
//!
//! The production factorization ([`DenseLu::factorize`]) is a right-looking
//! *blocked* kernel: columns are eliminated in panels of [`LU_PANEL`] columns,
//! and after each panel the trailing submatrix is updated one row at a time in
//! column tiles of [`LU_COL_TILE`] entries so the active row and the panel
//! rows stay cache-resident.  Everything operates on raw row slices obtained
//! with `split_at_mut` — the hot loops perform **no heap allocation** and no
//! per-element bounds arithmetic beyond slice indexing.  Above
//! [`LU_PAR_TRAILING_WORK`] scalar operations, the trailing update distributes
//! row chunks with rayon's `par_chunks_mut` (each row carries its own
//! multipliers, so rows are embarrassingly parallel).
//!
//! The pre-optimization kernel is retained verbatim as
//! [`DenseLu::factorize_reference`]: it performs the *same* floating-point
//! operations in the same per-element order, so the blocked kernel is
//! **bitwise identical** to it (factors, permutation, determinant and
//! solutions) — a property the top-level `kernel_equivalence` proptests pin
//! down.  The reference also serves as the "before" baseline of the kernel
//! benchmark suite (`BENCH_kernels.json`).

use crate::matrix::DenseMatrix;
use crate::norms::{inf_norm, matrix_inf_norm};
use crate::DenseError;

/// Error alias kept for API symmetry with the sparse solver.
pub type LuError = DenseError;

/// Panel width of the blocked factorization (columns eliminated per panel).
pub const LU_PANEL: usize = 64;

/// Column tile of the trailing-submatrix update, sized so one tile of the
/// active row plus the matching panel-row tiles fit comfortably in L1/L2.
pub const LU_COL_TILE: usize = 256;

/// Scalar-operation threshold above which the trailing update is distributed
/// across rayon worker threads.  Below it the scheduling overhead outweighs
/// the win (and the workspace's vendored rayon is sequential anyway).
pub const LU_PAR_TRAILING_WORK: usize = 1 << 18;

/// Rows per parallel chunk of the trailing update.
const LU_ROW_CHUNK: usize = 32;

/// LU factorization with partial (row) pivoting of a square dense matrix.
///
/// The factorization satisfies `P A = L U` where `P` is a row permutation,
/// `L` is unit lower triangular and `U` is upper triangular.  Both factors
/// are stored packed in a single matrix: the strictly lower part holds `L`
/// (without its unit diagonal) and the upper part holds `U`.
#[derive(Debug, Clone)]
pub struct DenseLu {
    /// Packed LU factors.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row placed at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by [`DenseLu::determinant`].
    perm_sign: f64,
    /// Number of floating-point operations spent in the factorization.
    flops: u64,
}

/// Updates one trailing row with the multipliers it carries in columns
/// `k0..k1`: `row[k1..] -= Σ_k row[k] * panel_row_k[k1..]`, tiled over
/// columns.  Per element the updates run in increasing `k` order as separate
/// multiply-subtract operations — exactly the order of the reference kernel,
/// which is what makes the blocked factorization bitwise reproducible.
///
/// The panel-row loop is unrolled four ways so each destination element is
/// loaded and stored once per *four* multipliers instead of once per
/// multiplier (the update is store-bound otherwise).  The chain
/// `v -= l0*u0; v -= l1*u1; …` keeps the four subtractions as separate,
/// ordered operations, so the unrolling does not change a single bit.
#[inline]
fn update_trailing_row(row: &mut [f64], panel: &[f64], k0: usize, k1: usize, n: usize) {
    let (head, tail) = row.split_at_mut(k1);
    let mults = &head[k0..k1];
    let nb = k1 - k0;
    let width = n - k1;
    let mut jb = 0;
    while jb < width {
        let je = (jb + LU_COL_TILE).min(width);
        let dst = &mut tail[jb..je];
        let len = dst.len();
        let mut r = 0;
        while r + 8 <= nb {
            let all_nonzero = mults[r..r + 8].iter().all(|&l| l != 0.0);
            if !all_nonzero {
                break;
            }
            let (l0, l1, l2, l3) = (mults[r], mults[r + 1], mults[r + 2], mults[r + 3]);
            let (l4, l5, l6, l7) = (mults[r + 4], mults[r + 5], mults[r + 6], mults[r + 7]);
            let u0 = &panel[r * n + k1 + jb..][..len];
            let u1 = &panel[(r + 1) * n + k1 + jb..][..len];
            let u2 = &panel[(r + 2) * n + k1 + jb..][..len];
            let u3 = &panel[(r + 3) * n + k1 + jb..][..len];
            let u4 = &panel[(r + 4) * n + k1 + jb..][..len];
            let u5 = &panel[(r + 5) * n + k1 + jb..][..len];
            let u6 = &panel[(r + 6) * n + k1 + jb..][..len];
            let u7 = &panel[(r + 7) * n + k1 + jb..][..len];
            for i in 0..len {
                let mut v = dst[i];
                v -= l0 * u0[i];
                v -= l1 * u1[i];
                v -= l2 * u2[i];
                v -= l3 * u3[i];
                v -= l4 * u4[i];
                v -= l5 * u5[i];
                v -= l6 * u6[i];
                v -= l7 * u7[i];
                dst[i] = v;
            }
            r += 8;
        }
        while r + 4 <= nb {
            let (l0, l1, l2, l3) = (mults[r], mults[r + 1], mults[r + 2], mults[r + 3]);
            if l0 != 0.0 && l1 != 0.0 && l2 != 0.0 && l3 != 0.0 {
                let u0 = &panel[r * n + k1 + jb..][..len];
                let u1 = &panel[(r + 1) * n + k1 + jb..][..len];
                let u2 = &panel[(r + 2) * n + k1 + jb..][..len];
                let u3 = &panel[(r + 3) * n + k1 + jb..][..len];
                for i in 0..len {
                    let mut v = dst[i];
                    v -= l0 * u0[i];
                    v -= l1 * u1[i];
                    v -= l2 * u2[i];
                    v -= l3 * u3[i];
                    dst[i] = v;
                }
            } else {
                // A zero multiplier must *skip* its update (exactly like the
                // reference kernel), so this quad takes the scalar path.
                for (off, &lik) in mults[r..r + 4].iter().enumerate() {
                    if lik == 0.0 {
                        continue;
                    }
                    let urow = &panel[(r + off) * n + k1 + jb..][..len];
                    for (d, &u) in dst.iter_mut().zip(urow) {
                        *d -= lik * u;
                    }
                }
            }
            r += 4;
        }
        while r < nb {
            let lik = mults[r];
            if lik != 0.0 {
                let urow = &panel[r * n + k1 + jb..][..len];
                for (d, &u) in dst.iter_mut().zip(urow) {
                    *d -= lik * u;
                }
            }
            r += 1;
        }
        jb = je;
    }
}

/// Elimination flop count recovered from the packed factors: every stored
/// nonzero multiplier `L(i, k)` cost one division plus `2 (n - k - 1)`
/// operations for its row update.  Both kernels report their flops through
/// this single scan so the counters agree bit for bit.
fn elimination_flops(lu: &DenseMatrix) -> u64 {
    let n = lu.rows();
    let mut flops = 0u64;
    for k in 0..n {
        let mut nonzero_multipliers = 0u64;
        for i in (k + 1)..n {
            if lu.get(i, k) != 0.0 {
                nonzero_multipliers += 1;
            }
        }
        flops += nonzero_multipliers * (2 * (n - k - 1) as u64 + 1);
    }
    flops
}

impl DenseLu {
    /// Factorizes a square matrix with partial pivoting.
    ///
    /// Returns [`DenseError::SingularPivot`] when a column has no usable
    /// pivot (the matrix is singular to working precision).
    pub fn factorize(a: &DenseMatrix) -> Result<Self, DenseError> {
        Self::factorize_with_threshold(a, 0.0)
    }

    /// Factorizes with a caller-supplied absolute pivot threshold using the
    /// blocked right-looking kernel (see the module docs).
    ///
    /// A pivot whose magnitude is `<= threshold` is treated as zero.  The
    /// default threshold of `0.0` only rejects exactly zero pivots, which
    /// matches the behaviour of textbook partial pivoting.
    pub fn factorize_with_threshold(a: &DenseMatrix, threshold: f64) -> Result<Self, DenseError> {
        if !a.is_square() {
            return Err(DenseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        {
            let data = lu.as_mut_slice();
            let mut k0 = 0;
            while k0 < n {
                let k1 = (k0 + LU_PANEL).min(n);

                // --- Panel factorization: columns k0..k1, rows k0..n. ---
                // Un-pivoted within the panel in the sense that row swaps are
                // applied to the *full* rows immediately, so no pivot vector
                // has to be replayed over the trailing submatrix later.
                for k in k0..k1 {
                    // Pivot: largest magnitude in column k at or below row k.
                    let mut piv_row = k;
                    let mut piv_val = data[k * n + k].abs();
                    for i in (k + 1)..n {
                        let v = data[i * n + k].abs();
                        if v > piv_val {
                            piv_val = v;
                            piv_row = i;
                        }
                    }
                    if piv_val <= threshold {
                        return Err(DenseError::SingularPivot {
                            column: k,
                            value: data[piv_row * n + k],
                        });
                    }
                    if piv_row != k {
                        let (upper, lower) = data.split_at_mut(piv_row * n);
                        upper[k * n..(k + 1) * n].swap_with_slice(&mut lower[..n]);
                        perm.swap(piv_row, k);
                        perm_sign = -perm_sign;
                    }
                    // Scale column k and update the remaining panel columns of
                    // every row below the pivot.
                    let (upper, lower) = data.split_at_mut((k + 1) * n);
                    let prow = &upper[k * n..(k + 1) * n];
                    let pivot = prow[k];
                    for row in lower.chunks_exact_mut(n) {
                        let lik = row[k] / pivot;
                        row[k] = lik;
                        if lik != 0.0 {
                            for (d, &u) in row[k + 1..k1].iter_mut().zip(&prow[k + 1..k1]) {
                                *d -= lik * u;
                            }
                        }
                    }
                }

                if k1 < n {
                    // --- Row block of U: trailing columns of the panel rows.
                    for k in k0..k1 {
                        let (upper, lower) = data.split_at_mut((k + 1) * n);
                        let prow = &upper[k * n..(k + 1) * n];
                        for row in lower[..(k1 - k - 1) * n].chunks_exact_mut(n) {
                            let lik = row[k];
                            if lik != 0.0 {
                                for (d, &u) in row[k1..].iter_mut().zip(&prow[k1..]) {
                                    *d -= lik * u;
                                }
                            }
                        }
                    }
                    // --- Trailing submatrix update: A22 -= L21 * U12. ---
                    let (upper, trailing) = data.split_at_mut(k1 * n);
                    let panel = &upper[k0 * n..k1 * n];
                    let rows_below = n - k1;
                    let work = rows_below * (n - k1) * (k1 - k0);
                    if work >= LU_PAR_TRAILING_WORK {
                        use rayon::prelude::*;
                        trailing.par_chunks_mut(LU_ROW_CHUNK * n).for_each(|chunk| {
                            for row in chunk.chunks_exact_mut(n) {
                                update_trailing_row(row, panel, k0, k1, n);
                            }
                        });
                    } else {
                        for row in trailing.chunks_exact_mut(n) {
                            update_trailing_row(row, panel, k0, k1, n);
                        }
                    }
                }
                k0 = k1;
            }
        }

        let flops = elimination_flops(&lu);
        Ok(DenseLu {
            lu,
            perm,
            perm_sign,
            flops,
        })
    }

    /// The pre-optimization right-looking kernel, retained as the differential
    /// reference: one pivot-row-tail `to_vec` per row update (an O(n²)
    /// allocation pattern) and no blocking.  [`DenseLu::factorize`] is bitwise
    /// identical to this kernel; the kernel benchmark suite uses it as the
    /// "before" baseline.
    pub fn factorize_reference(a: &DenseMatrix) -> Result<Self, DenseError> {
        Self::factorize_reference_with_threshold(a, 0.0)
    }

    /// Reference kernel with an explicit pivot threshold
    /// (see [`DenseLu::factorize_reference`]).
    pub fn factorize_reference_with_threshold(
        a: &DenseMatrix,
        threshold: f64,
    ) -> Result<Self, DenseError> {
        if !a.is_square() {
            return Err(DenseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find the pivot row: largest magnitude in column k at or below k.
            let mut piv_row = k;
            let mut piv_val = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = i;
                }
            }
            if piv_val <= threshold {
                return Err(DenseError::SingularPivot {
                    column: k,
                    value: lu.get(piv_row, k),
                });
            }
            if piv_row != k {
                lu.swap_rows(piv_row, k);
                perm.swap(piv_row, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let lik = lu.get(i, k) / pivot;
                lu.set(i, k, lik);
                if lik == 0.0 {
                    continue;
                }
                // Row update: row_i -= lik * row_k for the trailing columns.
                // Split borrows: copy the pivot row tail first.
                let tail: Vec<f64> = lu.row(k)[(k + 1)..].to_vec();
                let row_i = lu.row_mut(i);
                for (offset, &ukj) in tail.iter().enumerate() {
                    row_i[k + 1 + offset] -= lik * ukj;
                }
            }
        }

        let flops = elimination_flops(&lu);
        Ok(DenseLu {
            lu,
            perm,
            perm_sign,
            flops,
        })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Number of floating point operations performed by the factorization.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// The row permutation applied by pivoting (`perm[i]` = original index of
    /// the row now in position `i`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The packed factors (strict lower part `L`, upper part `U`), mainly for
    /// differential tests comparing two factorization kernels bit for bit.
    pub fn packed_factors(&self) -> &DenseMatrix {
        &self.lu
    }

    /// Solves `A x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, DenseError> {
        let n = self.order();
        if b.len() != n {
            return Err(DenseError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        let mut x = b.to_vec();
        let mut work = Vec::new();
        self.solve_into(&mut x, &mut work)?;
        Ok(x)
    }

    /// Solves `A x = b` in place: on entry `x` holds `b`, on exit the
    /// solution.  `work` is a caller-provided scratch buffer (grown to the
    /// system order on first use and reused across calls), so steady-state
    /// calls perform **no heap allocation**.
    pub fn solve_into(&self, x: &mut [f64], work: &mut Vec<f64>) -> Result<(), DenseError> {
        let n = self.order();
        if x.len() != n {
            return Err(DenseError::DimensionMismatch {
                expected: n,
                found: x.len(),
            });
        }
        work.resize(n, 0.0);
        let w = &mut work[..n];
        // Apply the permutation: w = P x.
        for (wi, &p) in w.iter_mut().zip(self.perm.iter()) {
            *wi = x[p];
        }
        // Forward substitution with unit lower triangular L.
        for i in 0..n {
            let row = self.lu.row(i);
            let mut acc = w[i];
            for (j, &lij) in row.iter().enumerate().take(i) {
                acc -= lij * w[j];
            }
            w[i] = acc;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = w[i];
            for (j, &uij) in row.iter().enumerate().skip(i + 1) {
                acc -= uij * w[j];
            }
            let diag = row[i];
            if diag == 0.0 {
                return Err(DenseError::SingularPivot {
                    column: i,
                    value: diag,
                });
            }
            w[i] = acc / diag;
        }
        x.copy_from_slice(w);
        Ok(())
    }

    /// Solves `A X = B` for a batch of right-hand sides in a single pass.
    ///
    /// Unlike calling [`DenseLu::solve`] per column, this applies the stored
    /// pivot sequence once and then streams every factor row across all
    /// columns during the forward and backward substitutions, so each packed
    /// factor row is read exactly once per sweep regardless of batch width.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, DenseError> {
        let mut xs: Vec<Vec<f64>> = rhs.to_vec();
        let mut work = Vec::new();
        self.solve_many_into(&mut xs, &mut work)?;
        Ok(xs)
    }

    /// Batched in-place solve: every column of `cols` holds a right-hand side
    /// on entry and the matching solution on exit.  Like
    /// [`DenseLu::solve_into`] this reuses the caller's scratch buffer, so
    /// repeated batched solves allocate nothing.
    pub fn solve_many_into(
        &self,
        cols: &mut [Vec<f64>],
        work: &mut Vec<f64>,
    ) -> Result<(), DenseError> {
        let n = self.order();
        for b in cols.iter() {
            if b.len() != n {
                return Err(DenseError::DimensionMismatch {
                    expected: n,
                    found: b.len(),
                });
            }
        }
        work.resize(n, 0.0);
        // Apply the pivot permutation to every column up front.
        for col in cols.iter_mut() {
            let w = &mut work[..n];
            for (wi, &p) in w.iter_mut().zip(self.perm.iter()) {
                *wi = col[p];
            }
            col.copy_from_slice(w);
        }
        // Forward substitution with unit lower triangular L, one row pass.
        for i in 0..n {
            let row = self.lu.row(i);
            for x in cols.iter_mut() {
                let mut acc = x[i];
                for (j, &lij) in row.iter().enumerate().take(i) {
                    acc -= lij * x[j];
                }
                x[i] = acc;
            }
        }
        // Backward substitution with U, one row pass.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let diag = row[i];
            if diag == 0.0 {
                return Err(DenseError::SingularPivot {
                    column: i,
                    value: diag,
                });
            }
            for x in cols.iter_mut() {
                let mut acc = x[i];
                for (j, &uij) in row.iter().enumerate().skip(i + 1) {
                    acc -= uij * x[j];
                }
                x[i] = acc / diag;
            }
        }
        Ok(())
    }

    /// Solves for several right-hand sides given as columns of `b`.
    pub fn solve_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix, DenseError> {
        if b.rows() != self.order() {
            return Err(DenseError::DimensionMismatch {
                expected: self.order(),
                found: b.rows(),
            });
        }
        let mut out = DenseMatrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b.get(i, j)).collect();
            let x = self.solve(&col)?;
            for (i, xi) in x.into_iter().enumerate() {
                out.set(i, j, xi);
            }
        }
        Ok(out)
    }

    /// Reconstructs `L` as an explicit unit lower triangular matrix.
    pub fn l_factor(&self) -> DenseMatrix {
        let n = self.order();
        let mut l = DenseMatrix::identity(n);
        for i in 0..n {
            for j in 0..i {
                l.set(i, j, self.lu.get(i, j));
            }
        }
        l
    }

    /// Reconstructs `U` as an explicit upper triangular matrix.
    pub fn u_factor(&self) -> DenseMatrix {
        let n = self.order();
        let mut u = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                u.set(i, j, self.lu.get(i, j));
            }
        }
        u
    }

    /// Reconstructs `P A` from the factors (used by the property tests).
    pub fn reconstruct_pa(&self) -> DenseMatrix {
        self.l_factor()
            .gemm(&self.u_factor())
            .expect("factor shapes always agree")
    }

    /// Determinant of the original matrix, computed from the pivots.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.order() {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Crude estimate of the infinity-norm condition number using one
    /// inverse-power step (`||A||_inf * ||A^{-1} e||_inf` for a random-ish
    /// probe vector).  Good enough to flag badly conditioned blocks in the
    /// multisplitting decomposition diagnostics.
    pub fn condition_estimate(&self, a: &DenseMatrix) -> Result<f64, DenseError> {
        let n = self.order();
        let probe: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = self.solve(&probe)?;
        let inv_norm_est = inf_norm(&y) / inf_norm(&probe).max(f64::EPSILON);
        Ok(matrix_inf_norm(a) * inv_norm_est)
    }

    /// One step of iterative refinement: given a candidate solution `x`,
    /// returns an improved solution `x + A^{-1}(b - A x)`.
    pub fn refine(&self, a: &DenseMatrix, b: &[f64], x: &[f64]) -> Result<Vec<f64>, DenseError> {
        let ax = a.gemv(x)?;
        let r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, axi)| bi - axi).collect();
        let d = self.solve(&r)?;
        Ok(x.iter().zip(d.iter()).map(|(xi, di)| xi + di).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dd_matrix(n: usize, seed: u64) -> DenseMatrix {
        // Diagonally dominant => nonsingular and well conditioned.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    a.set(i, j, v);
                    row_sum += v.abs();
                }
            }
            a.set(i, i, row_sum + 1.0 + rng.gen_range(0.0..1.0));
        }
        a
    }

    #[test]
    fn factorize_and_solve_2x2() {
        let a = DenseMatrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let lu = DenseLu::factorize(&a).unwrap();
        let x = lu.solve(&[10.0, 12.0]).unwrap();
        // A x = b => x = [1, 2]
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = DenseLu::factorize(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            DenseLu::factorize(&a),
            Err(DenseError::SingularPivot { .. })
        ));
        assert!(matches!(
            DenseLu::factorize_reference(&a),
            Err(DenseError::SingularPivot { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            DenseLu::factorize(&a),
            Err(DenseError::NotSquare { .. })
        ));
        assert!(matches!(
            DenseLu::factorize_reference(&a),
            Err(DenseError::NotSquare { .. })
        ));
    }

    #[test]
    fn reconstruction_matches_pa() {
        let a = random_dd_matrix(12, 7);
        let lu = DenseLu::factorize(&a).unwrap();
        let pa = lu.reconstruct_pa();
        for i in 0..12 {
            let orig = lu.permutation()[i];
            for j in 0..12 {
                assert!(
                    (pa.get(i, j) - a.get(orig, j)).abs() < 1e-10,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn solve_recovers_random_solution() {
        let n = 30;
        let a = random_dd_matrix(n, 42);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.gemv(&x_true).unwrap();
        let lu = DenseLu::factorize(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        for (xs, xt) in x.iter().zip(x_true.iter()) {
            assert!((xs - xt).abs() < 1e-8);
        }
    }

    #[test]
    fn blocked_kernel_is_bitwise_identical_to_reference() {
        // Sizes straddling the panel width exercise the partial-panel and
        // multi-panel code paths.
        for &n in &[1usize, 2, 17, LU_PANEL - 1, LU_PANEL, LU_PANEL + 1, 150] {
            let a = random_dd_matrix(n, 1234 + n as u64);
            let blocked = DenseLu::factorize(&a).unwrap();
            let reference = DenseLu::factorize_reference(&a).unwrap();
            assert_eq!(
                blocked.packed_factors(),
                reference.packed_factors(),
                "n={n}"
            );
            assert_eq!(blocked.permutation(), reference.permutation(), "n={n}");
            assert_eq!(blocked.flops(), reference.flops(), "n={n}");
            assert_eq!(
                blocked.determinant().to_bits(),
                reference.determinant().to_bits(),
                "n={n}"
            );
            let b: Vec<f64> = (0..n).map(|i| ((i * 5) % 7) as f64 - 3.0).collect();
            assert_eq!(blocked.solve(&b).unwrap(), reference.solve(&b).unwrap());
        }
    }

    #[test]
    fn solve_into_matches_solve_and_reuses_workspace() {
        let a = random_dd_matrix(40, 8);
        let lu = DenseLu::factorize(&a).unwrap();
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.4).cos()).collect();
        let expected = lu.solve(&b).unwrap();
        let mut x = b.clone();
        let mut work = Vec::new();
        lu.solve_into(&mut x, &mut work).unwrap();
        assert_eq!(x, expected);
        // Second call reuses the grown workspace.
        let cap = work.capacity();
        x.copy_from_slice(&b);
        lu.solve_into(&mut x, &mut work).unwrap();
        assert_eq!(x, expected);
        assert_eq!(work.capacity(), cap);
        // Wrong length is rejected.
        assert!(lu.solve_into(&mut [0.0; 3], &mut work).is_err());
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        let lu = DenseLu::factorize(&a).unwrap();
        assert!((lu.determinant() - 6.0).abs() < 1e-12);
        // Permutation sign must flip the determinant correctly.
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lub = DenseLu::factorize(&b).unwrap();
        assert!((lub.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_many_matches_one_at_a_time() {
        let a = random_dd_matrix(25, 9);
        let lu = DenseLu::factorize(&a).unwrap();
        let rhs: Vec<Vec<f64>> = (0..6)
            .map(|k| (0..25).map(|i| ((i + k) as f64 * 0.7).sin()).collect())
            .collect();
        let batch = lu.solve_many(&rhs).unwrap();
        for (b, x_batch) in rhs.iter().zip(batch.iter()) {
            let x_single = lu.solve(b).unwrap();
            // Same arithmetic order per column => bitwise identical results.
            assert_eq!(x_batch, &x_single);
        }
    }

    #[test]
    fn solve_many_rejects_bad_lengths_and_handles_empty_batch() {
        let a = random_dd_matrix(5, 2);
        let lu = DenseLu::factorize(&a).unwrap();
        assert!(lu.solve_many(&[vec![1.0; 4]]).is_err());
        assert!(lu.solve_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = random_dd_matrix(8, 3);
        let lu = DenseLu::factorize(&a).unwrap();
        let b = DenseMatrix::from_fn(8, 2, |i, j| (i + j) as f64);
        let x = lu.solve_matrix(&b).unwrap();
        let ax = a.gemm(&x).unwrap();
        for i in 0..8 {
            for j in 0..2 {
                assert!((ax.get(i, j) - b.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn refinement_does_not_degrade_solution() {
        let n = 20;
        let a = random_dd_matrix(n, 11);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.01).collect();
        let b = a.gemv(&x_true).unwrap();
        let lu = DenseLu::factorize(&a).unwrap();
        let x0 = lu.solve(&b).unwrap();
        let x1 = lu.refine(&a, &b, &x0).unwrap();
        let err0 = x0
            .iter()
            .zip(&x_true)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        let err1 = x1
            .iter()
            .zip(&x_true)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(err1 <= err0 * 10.0 + 1e-12);
    }

    #[test]
    fn condition_estimate_is_at_least_one_for_identity() {
        let a = DenseMatrix::identity(5);
        let lu = DenseLu::factorize(&a).unwrap();
        let c = lu.condition_estimate(&a).unwrap();
        assert!(c >= 0.99);
    }

    #[test]
    fn flops_counter_grows_with_size() {
        let small = DenseLu::factorize(&random_dd_matrix(5, 1)).unwrap();
        let large = DenseLu::factorize(&random_dd_matrix(40, 1)).unwrap();
        assert!(large.flops() > small.flops());
    }
}
