//! Local and global convergence detection.
//!
//! Algorithm 1 stops "until global convergence is achieved".  The paper
//! points to two detection schemes: a centralized algorithm \[2\] where a
//! coordinator collects local states, and a decentralized algorithm \[4\]
//! suited to asynchronous iterations where no processor may ever observe a
//! globally consistent snapshot.
//!
//! * In the **synchronous** driver the decision is trivial: an
//!   `allreduce_and` of the local convergence flags at the end of every
//!   iteration (this *is* the centralized scheme collapsed onto a reduction
//!   tree).
//! * In the **asynchronous** driver each processor publishes its local state
//!   to a [`ConvergenceBoard`].  Global convergence is declared only after
//!   every processor has reported "locally converged" and has *kept*
//!   reporting it for a confirmation window, which mirrors the
//!   pseudo-periodic verification phase of the decentralized algorithm
//!   (a processor that receives fresh data and diverges again resets the
//!   window).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Tracks *local* convergence of one processor from the per-iteration
/// increment `||x_new − x_old||_inf`.
///
/// The paper fixes the accuracy to `1e-8`; a processor is considered locally
/// converged once its increment has stayed below the tolerance for
/// `stable_iterations` consecutive iterations (one iteration suffices in the
/// synchronous case, the asynchronous case uses a longer window to avoid
/// premature termination while fresher dependency data is still in flight).
#[derive(Debug, Clone)]
pub struct ResidualTracker {
    tolerance: f64,
    stable_iterations: usize,
    consecutive: usize,
    last_increment: f64,
}

impl ResidualTracker {
    /// Creates a tracker with the given tolerance and confirmation window.
    pub fn new(tolerance: f64, stable_iterations: usize) -> Self {
        ResidualTracker {
            tolerance,
            stable_iterations: stable_iterations.max(1),
            consecutive: 0,
            last_increment: f64::INFINITY,
        }
    }

    /// Records the increment of one iteration and returns the local verdict.
    pub fn record(&mut self, increment: f64) -> LocalConvergence {
        self.last_increment = increment;
        if increment <= self.tolerance {
            self.consecutive += 1;
        } else {
            self.consecutive = 0;
        }
        if self.consecutive >= self.stable_iterations {
            LocalConvergence::Converged
        } else {
            LocalConvergence::NotConverged
        }
    }

    /// The most recent increment recorded.
    pub fn last_increment(&self) -> f64 {
        self.last_increment
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Resets the confirmation window (used when fresh dependency data makes
    /// the local solution move again).
    pub fn reset(&mut self) {
        self.consecutive = 0;
    }

    /// Number of consecutive below-tolerance iterations observed so far —
    /// the confirmation-window progress.  Exposed so a checkpoint can
    /// persist the tracker mid-window and a resumed rank reproduces the
    /// exact same convergence decision sequence.
    pub fn consecutive(&self) -> usize {
        self.consecutive
    }

    /// Restores the confirmation-window state saved by a checkpoint
    /// ([`ResidualTracker::consecutive`] / [`ResidualTracker::last_increment`]).
    pub fn restore(&mut self, consecutive: usize, last_increment: f64) {
        self.consecutive = consecutive;
        self.last_increment = last_increment;
    }
}

/// Local convergence verdict of one processor for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalConvergence {
    /// The local increment has been below tolerance long enough.
    Converged,
    /// Still iterating.
    NotConverged,
}

impl LocalConvergence {
    /// `true` when converged.
    pub fn as_bool(self) -> bool {
        matches!(self, LocalConvergence::Converged)
    }
}

/// Shared global-convergence board for the asynchronous driver
/// (decentralized-detection approximation: every processor can read and
/// write it without a coordinator, and the final decision requires a
/// confirmation pass).
#[derive(Debug)]
pub struct ConvergenceBoard {
    /// Protected detection state.
    state: Mutex<BoardState>,
    /// Confirmation waves required before declaring global convergence.
    confirmations_required: u64,
    /// Latched global decision (never un-set once true).
    global: AtomicBool,
}

#[derive(Debug)]
struct BoardState {
    /// Per-processor local convergence flags.
    flags: Vec<bool>,
    /// Current verification wave; bumped whenever a processor reports
    /// non-convergence (invalidating pending confirmations) or when a wave
    /// completes.
    wave: u64,
    /// The wave in which each processor last re-confirmed while every flag
    /// was set.
    confirmed_wave: Vec<u64>,
    /// Number of completed confirmation waves since the last invalidation.
    waves_done: u64,
    /// Iteration counts per processor, for reporting.
    iterations: Vec<u64>,
}

impl ConvergenceBoard {
    /// Creates a board for `num_ranks` processors requiring
    /// `confirmations_required` complete confirmation waves (a wave completes
    /// once *every* processor has reported "converged" while all flags were
    /// set — this is what prevents a single fast processor from terminating
    /// the run on a stale snapshot).
    pub fn new(num_ranks: usize, confirmations_required: u64) -> Arc<Self> {
        Arc::new(ConvergenceBoard {
            state: Mutex::new(BoardState {
                flags: vec![false; num_ranks],
                wave: 1,
                confirmed_wave: vec![0; num_ranks],
                waves_done: 0,
                iterations: vec![0; num_ranks],
            }),
            confirmations_required: confirmations_required.max(1),
            global: AtomicBool::new(false),
        })
    }

    /// Number of processors tracked.
    pub fn num_ranks(&self) -> usize {
        self.state.lock().flags.len()
    }

    /// Publishes processor `rank`'s local state for iteration `iteration`.
    ///
    /// Returns `true` when global convergence has been reached (either just
    /// now or earlier).
    pub fn report(&self, rank: usize, iteration: u64, converged: LocalConvergence) -> bool {
        let mut state = self.state.lock();
        state.iterations[rank] = state.iterations[rank].max(iteration);
        if !converged.as_bool() {
            // A diverging processor invalidates every pending confirmation.
            state.flags[rank] = false;
            state.wave += 1;
            state.waves_done = 0;
            return self.global.load(Ordering::SeqCst);
        }
        state.flags[rank] = true;
        if state.flags.iter().all(|&f| f) {
            let wave = state.wave;
            state.confirmed_wave[rank] = wave;
            if state.confirmed_wave.iter().all(|&w| w == wave) {
                state.waves_done += 1;
                if state.waves_done >= self.confirmations_required {
                    self.global.store(true, Ordering::SeqCst);
                } else {
                    // Start the next confirmation wave.
                    state.wave += 1;
                }
            }
        }
        self.global.load(Ordering::SeqCst)
    }

    /// Whether global convergence has been declared.
    pub fn is_globally_converged(&self) -> bool {
        self.global.load(Ordering::SeqCst)
    }

    /// Forces global termination (used to abort a run or to propagate an
    /// error from one processor to the others).
    pub fn force_terminate(&self) {
        self.global.store(true, Ordering::SeqCst);
    }

    /// Per-processor iteration counts reported so far.
    pub fn iteration_counts(&self) -> Vec<u64> {
        self.state.lock().iterations.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn residual_tracker_requires_consecutive_small_increments() {
        let mut t = ResidualTracker::new(1e-8, 2);
        assert_eq!(t.record(1.0), LocalConvergence::NotConverged);
        assert_eq!(t.record(1e-9), LocalConvergence::NotConverged);
        assert_eq!(t.record(1e-10), LocalConvergence::Converged);
        assert_eq!(t.last_increment(), 1e-10);
        assert_eq!(t.tolerance(), 1e-8);
        // A large increment resets the window.
        assert_eq!(t.record(0.5), LocalConvergence::NotConverged);
        assert_eq!(t.record(1e-9), LocalConvergence::NotConverged);
        t.reset();
        assert_eq!(t.record(1e-9), LocalConvergence::NotConverged);
        assert_eq!(t.record(1e-9), LocalConvergence::Converged);
    }

    #[test]
    fn single_iteration_window_converges_immediately() {
        let mut t = ResidualTracker::new(1e-6, 1);
        assert_eq!(t.record(1e-7), LocalConvergence::Converged);
    }

    #[test]
    fn board_requires_every_rank_to_reconfirm_each_wave() {
        let board = ConvergenceBoard::new(2, 2);
        assert!(!board.report(0, 1, LocalConvergence::Converged));
        assert!(!board.is_globally_converged());
        // Rank 1's report makes every flag true and confirms rank 1 for wave 1;
        // rank 0 still has to re-confirm before the wave completes.
        assert!(!board.report(1, 1, LocalConvergence::Converged));
        assert!(!board.report(0, 2, LocalConvergence::Converged));
        // Wave 1 complete; a second full wave is required.
        assert!(!board.report(1, 2, LocalConvergence::Converged));
        assert!(board.report(0, 3, LocalConvergence::Converged));
        assert!(board.is_globally_converged());
        assert_eq!(board.iteration_counts(), vec![3, 2]);
    }

    #[test]
    fn single_fast_rank_cannot_latch_alone() {
        let board = ConvergenceBoard::new(2, 1);
        board.report(1, 1, LocalConvergence::Converged);
        // Rank 0 re-reports many times; without a fresh confirmation from
        // rank 1 after the all-true transition the board must not latch.
        for iter in 1..50 {
            assert!(!board.report(0, iter, LocalConvergence::Converged) || iter > 1);
        }
        // The wave completes only once rank 1 confirms while all flags are set.
        assert!(board.report(1, 2, LocalConvergence::Converged) || board.is_globally_converged());
    }

    #[test]
    fn divergence_resets_confirmations() {
        let board = ConvergenceBoard::new(2, 1);
        board.report(0, 1, LocalConvergence::Converged);
        board.report(1, 1, LocalConvergence::Converged);
        // Rank 1 receives fresh data and diverges again before rank 0
        // re-confirms: the pending wave is invalidated.
        board.report(1, 2, LocalConvergence::NotConverged);
        assert!(!board.is_globally_converged());
        board.report(1, 3, LocalConvergence::Converged);
        assert!(!board.is_globally_converged());
        // A full fresh wave (both ranks confirming) is required again; once
        // rank 0 also re-confirms, the single required wave completes.
        assert!(board.report(0, 2, LocalConvergence::Converged));
        assert!(board.is_globally_converged());
    }

    #[test]
    fn force_terminate_latches() {
        let board = ConvergenceBoard::new(3, 1);
        board.force_terminate();
        assert!(board.is_globally_converged());
        assert!(board.report(0, 1, LocalConvergence::NotConverged));
    }

    #[test]
    fn board_is_thread_safe() {
        let board = ConvergenceBoard::new(4, 3);
        let handles: Vec<_> = (0..4)
            .map(|rank| {
                let b = Arc::clone(&board);
                thread::spawn(move || {
                    let mut iter = 0u64;
                    loop {
                        iter += 1;
                        let verdict = if iter > 5 {
                            LocalConvergence::Converged
                        } else {
                            LocalConvergence::NotConverged
                        };
                        if b.report(rank, iter, verdict) {
                            return iter;
                        }
                        // Give the other reporter threads a chance to run so
                        // the all-converged state can actually be observed.
                        thread::yield_now();
                        if iter > 5_000_000 {
                            panic!("board never converged");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            let iters = h.join().unwrap();
            assert!(iters >= 6);
        }
        assert!(board.is_globally_converged());
    }
}
