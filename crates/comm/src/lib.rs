//! In-process message-passing layer for the multisplitting drivers.
//!
//! The paper implements its synchronous solver over MPI and its asynchronous
//! solver over Corba, running on machines spread across two sites.  Inside
//! this repository every "processor" is a thread, and this crate provides the
//! communication primitives those threads use:
//!
//! * [`message::Message`] — the wire messages (solution slices, convergence
//!   votes, termination), with a compact binary encoding so message sizes can
//!   be accounted against the grid's bandwidth model,
//! * [`transport`] — the [`transport::Transport`] trait plus the in-process
//!   channel transport and a delay-modelling wrapper,
//! * [`communicator::Communicator`] — the MPI-like per-rank handle (send,
//!   receive, barrier, allreduce),
//! * [`convergence`] — local and global convergence detection for both the
//!   synchronous (allreduce-based) and asynchronous (shared-board,
//!   confirmation-window) modes, following the centralized \[2\] and
//!   decentralized \[4\] schemes referenced by the paper.

pub mod communicator;
pub mod convergence;
pub mod message;
pub mod transport;

pub use communicator::{CommGroup, Communicator};
pub use convergence::{ConvergenceBoard, LocalConvergence, ResidualTracker};
pub use message::Message;
pub use transport::{DelayedTransport, InProcTransport, LinkStats, Transport};

/// Errors produced by the communication layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// The destination or source rank does not exist.
    UnknownRank { rank: usize, total: usize },
    /// The peer endpoint has been dropped (its thread exited).
    Disconnected { rank: usize },
    /// A blocking receive timed out.
    Timeout { rank: usize },
    /// A message could not be decoded.
    Codec(String),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::UnknownRank { rank, total } => {
                write!(f, "rank {rank} out of range (communicator has {total})")
            }
            CommError::Disconnected { rank } => write!(f, "rank {rank} disconnected"),
            CommError::Timeout { rank } => write!(f, "receive on rank {rank} timed out"),
            CommError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}
