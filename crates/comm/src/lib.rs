//! Message-passing layer for the multisplitting drivers.
//!
//! The paper implements its synchronous solver over MPI and its asynchronous
//! solver over Corba, running on machines spread across two sites.  This
//! crate provides both halves of that story: the in-process transport used
//! when every "processor" is a thread, and a TCP transport used when every
//! processor is a separate OS process on a real network:
//!
//! * [`message::Message`] — the wire messages (solution slices, convergence
//!   votes, termination), with a compact binary encoding so message sizes can
//!   be accounted against the grid's bandwidth model,
//! * [`wire`] — length-prefixed framing and the connection handshake used by
//!   the socket transport,
//! * [`transport`] — the [`transport::Transport`] trait plus the in-process
//!   channel transport and a delay-modelling wrapper,
//! * [`tcp`] — the [`tcp::TcpTransport`] per-rank socket endpoint, and the
//!   [`tcp::LoopbackMesh`] that runs the unchanged threaded drivers over
//!   real sockets,
//! * [`communicator::Communicator`] — the MPI-like per-rank handle (send,
//!   receive, barrier, allreduce),
//! * [`convergence`] — local and global convergence detection for both the
//!   synchronous (allreduce-based) and asynchronous (shared-board,
//!   confirmation-window) modes, following the centralized \[2\] and
//!   decentralized \[4\] schemes referenced by the paper.
//!
//! # Place in the runtime architecture
//!
//! In the engine/policy/adapter architecture documented at the top of
//! `msplit-core` (`crates/core/src/lib.rs`), this crate is the bottom box:
//! every driver funnels its traffic through a `RankLink` over a
//! [`transport::Transport`] from here, the [`message::Message`] enum is the
//! complete protocol vocabulary (data slices, convergence votes, halts,
//! heartbeats, reshape notices and speed reports for the fault-tolerance
//! layer of `docs/fault-tolerance.md`), and [`convergence`] supplies the
//! vote-window bookkeeping the convergence policies persist across
//! checkpoints.

pub mod communicator;
pub mod convergence;
pub mod message;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use communicator::{CommGroup, Communicator};
pub use convergence::{ConvergenceBoard, LocalConvergence, ResidualTracker};
pub use message::{Message, RejectCode};
pub use tcp::{BoundTcpTransport, LinkDelay, LoopbackMesh, TcpOptions, TcpTransport};
pub use transport::{DelayedTransport, InProcTransport, LinkStats, Transport};

/// Errors produced by the communication layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// The destination or source rank does not exist.
    UnknownRank { rank: usize, total: usize },
    /// The peer endpoint is gone (its thread exited, its process died, or
    /// its socket closed).
    Disconnected { rank: usize },
    /// A blocking receive timed out.
    Timeout { rank: usize },
    /// A message or frame could not be decoded.
    Codec(String),
    /// A socket operation failed (bind, connect, handshake, read, write).
    Io(String),
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::UnknownRank { rank, total } => {
                write!(f, "rank {rank} out of range (communicator has {total})")
            }
            CommError::Disconnected { rank } => write!(f, "rank {rank} disconnected"),
            CommError::Timeout { rank } => write!(f, "receive on rank {rank} timed out"),
            CommError::Codec(msg) => write!(f, "codec error: {msg}"),
            CommError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}
