//! TCP transport: the wire-capable counterpart of [`crate::InProcTransport`].
//!
//! Every rank owns one endpoint.  An endpoint binds a listener, then forms a
//! full mesh with its peers: for each ordered pair `(i, j)` rank `i` opens
//! one connection to rank `j`'s listener and uses it exclusively for `i → j`
//! traffic, so each rank ends up with `world − 1` outgoing streams (writes)
//! and `world − 1` incoming streams (reads).  Connection establishment runs a
//! deterministic [`Handshake`] — rank, world size, job fingerprint — so a
//! mis-wired address list or a mismatched partition fails at connect time.
//!
//! Outgoing messages are framed ([`crate::wire`]) and queued on a **bounded
//! per-peer outbox** drained by a dedicated writer thread: a slow or dead
//! peer exerts backpressure on its own queue instead of blocking the solver
//! on a socket write.  Incoming frames are decoded by per-stream reader
//! threads feeding the same single-inbox abstraction the in-process
//! transport uses, so the drivers cannot tell the difference.
//!
//! A [`LinkDelay`] maps the grid model's [`LinkSpec`] costs onto real socket
//! sends: the writer thread sleeps a scaled fraction of the modelled
//! transfer time before each write, which is how the loopback examples make
//! 127.0.0.1 behave like the paper's two-site WAN.
//!
//! [`Handshake`]: crate::wire::Handshake
//! [`LinkSpec`]: msplit_grid::LinkSpec

use crate::message::Message;
use crate::transport::{LinkStats, Transport};
use crate::wire::{encode_frame, read_frame, Handshake};
use crate::CommError;
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use msplit_grid::Grid;
use parking_lot::Mutex;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Realizes the grid model's link delays on real socket sends: before each
/// write, the writer thread sleeps `time_scale` times the modelled transfer
/// seconds of the `(from, to)` link for the frame's byte count.
#[derive(Debug, Clone)]
pub struct LinkDelay {
    /// Grid whose network model prices each link.
    pub grid: Grid,
    /// Fraction of the modelled delay actually slept (`1e-3` makes a 10 ms
    /// WAN latency cost 10 µs of real time — enough to reorder traffic,
    /// cheap enough for CI).
    pub time_scale: f64,
}

impl LinkDelay {
    fn sleep_for(&self, from: usize, to: usize, bytes: usize) -> Duration {
        match self.grid.transfer_seconds(from, to, bytes) {
            Ok(seconds) => Duration::from_secs_f64((seconds * self.time_scale).max(0.0)),
            Err(_) => Duration::ZERO,
        }
    }
}

/// Tuning knobs of a [`TcpTransport`] mesh.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Job fingerprint exchanged in the handshake (the matrix fingerprint in
    /// the distributed solver); all ranks must agree.
    pub fingerprint: u64,
    /// Budget for forming the full mesh (listen + connect + handshakes).
    pub connect_timeout: Duration,
    /// Capacity of each per-peer outbox; sends block once a peer falls this
    /// many messages behind.
    pub outbox_capacity: usize,
    /// Optional modelled per-link delay realized on sends.
    pub delay: Option<LinkDelay>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            fingerprint: 0,
            connect_timeout: Duration::from_secs(20),
            outbox_capacity: 1024,
            delay: None,
        }
    }
}

/// A bound-but-unconnected endpoint.  Binding first and connecting second
/// lets a launcher collect every rank's actual address (ephemeral ports)
/// before any rank starts dialing.
pub struct BoundTcpTransport {
    local_rank: usize,
    listener: TcpListener,
}

impl BoundTcpTransport {
    /// Binds rank `local_rank`'s listener on `listen_addr`
    /// (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(local_rank: usize, listen_addr: &str) -> Result<Self, CommError> {
        let listener = TcpListener::bind(listen_addr)
            .map_err(|e| CommError::Io(format!("rank {local_rank}: bind {listen_addr}: {e}")))?;
        Ok(BoundTcpTransport {
            local_rank,
            listener,
        })
    }

    /// The address the listener actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<String, CommError> {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .map_err(|e| CommError::Io(format!("local_addr: {e}")))
    }

    /// Forms the full mesh: connects to every peer in `addrs` (indexed by
    /// rank; `addrs[local_rank]` is ignored) and accepts every peer's
    /// incoming connection, handshaking both directions.
    pub fn connect(
        self,
        addrs: &[String],
        opts: TcpOptions,
    ) -> Result<Arc<TcpTransport>, CommError> {
        let world = addrs.len();
        let local_rank = self.local_rank;
        if local_rank >= world {
            return Err(CommError::UnknownRank {
                rank: local_rank,
                total: world,
            });
        }
        if let Some(delay) = &opts.delay {
            if delay.grid.num_machines() < world {
                return Err(CommError::Io(format!(
                    "delay grid has {} machines but the mesh has {world} ranks",
                    delay.grid.num_machines()
                )));
            }
        }
        let deadline = Instant::now() + opts.connect_timeout;
        let local_hello = Handshake {
            rank: local_rank,
            world_size: world,
            fingerprint: opts.fingerprint,
        };

        // Accept in a dedicated thread so dialing out and accepting in make
        // progress concurrently (two ranks dialing each other would deadlock
        // otherwise).
        let acceptor = {
            let listener = self.listener;
            let hello = local_hello;
            std::thread::spawn(move || accept_peers(&listener, hello, deadline))
        };

        // Dial every peer; retry while their listener is still coming up.
        let mut outboxes: Vec<Option<Sender<OutFrame>>> = (0..world).map(|_| None).collect();
        let mut writer_handles = Vec::new();
        for (peer, addr) in addrs.iter().enumerate() {
            if peer == local_rank {
                continue;
            }
            let stream = dial_peer(local_rank, peer, addr, local_hello, deadline)?;
            let (tx, rx) = bounded::<OutFrame>(opts.outbox_capacity);
            outboxes[peer] = Some(tx);
            writer_handles.push(std::thread::spawn(move || writer_loop(stream, rx)));
        }

        let accepted = acceptor
            .join()
            .unwrap_or_else(|_| Err(CommError::Io("acceptor thread panicked".to_string())))?;

        let (inbox_tx, inbox_rx) = unbounded::<Message>();
        let live_readers = Arc::new(std::sync::atomic::AtomicUsize::new(accepted.len()));
        for (peer, stream) in accepted {
            let tx = inbox_tx.clone();
            let live = Arc::clone(&live_readers);
            std::thread::spawn(move || {
                reader_loop(peer, stream, tx);
                live.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            });
        }

        Ok(Arc::new(TcpTransport {
            local_rank,
            world,
            outboxes: Mutex::new(outboxes),
            inbox_tx,
            inbox_rx,
            live_readers,
            stats: Mutex::new(LinkStats::default()),
            delay: opts.delay,
            writer_handles: Mutex::new(writer_handles),
        }))
    }
}

/// One frame queued for a peer, with the modelled delay to realize before
/// the write.
struct OutFrame {
    bytes: Vec<u8>,
    delay: Duration,
}

fn accept_peers(
    listener: &TcpListener,
    hello: Handshake,
    deadline: Instant,
) -> Result<Vec<(usize, TcpStream)>, CommError> {
    let world = hello.world_size;
    let expected = world - 1;
    let mut accepted: Vec<(usize, TcpStream)> = Vec::with_capacity(expected);
    let mut last_error: Option<CommError> = None;
    listener
        .set_nonblocking(true)
        .map_err(|e| CommError::Io(format!("listener nonblocking: {e}")))?;
    while accepted.len() < expected {
        match listener.accept() {
            Ok((stream, _)) => match greet_incoming(stream, hello, &accepted) {
                Ok(pair) => accepted.push(pair),
                // A stray or misconfigured connection must not take the mesh
                // down; remember the reason in case the deadline expires.
                Err(e) => last_error = Some(e),
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let detail = last_error
                        .map(|e| format!(" (last handshake failure: {e})"))
                        .unwrap_or_default();
                    return Err(CommError::Io(format!(
                        "rank {}: timed out with {}/{expected} incoming connections{detail}",
                        hello.rank,
                        accepted.len()
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(CommError::Io(format!("accept failed: {e}"))),
        }
    }
    Ok(accepted)
}

/// How long the acceptor waits for one incoming connection's handshake.
/// Kept short: while this read blocks, legitimate peers queue behind a
/// silent stray (e.g. a port scanner), and their own handshake-ack waits
/// keep ticking.
const INCOMING_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

fn greet_incoming(
    mut stream: TcpStream,
    hello: Handshake,
    accepted: &[(usize, TcpStream)],
) -> Result<(usize, TcpStream), CommError> {
    stream
        .set_nonblocking(false)
        .and_then(|()| stream.set_read_timeout(Some(INCOMING_HANDSHAKE_TIMEOUT)))
        .and_then(|()| stream.set_nodelay(true))
        .map_err(|e| CommError::Io(format!("incoming socket setup: {e}")))?;
    let peer = Handshake::read_from(&mut stream)?;
    if peer.world_size != hello.world_size {
        return Err(CommError::Codec(format!(
            "peer expects a {}-rank world, local world is {}",
            peer.world_size, hello.world_size
        )));
    }
    if peer.fingerprint != hello.fingerprint {
        return Err(CommError::Codec(format!(
            "peer fingerprint {:#x} does not match local {:#x}",
            peer.fingerprint, hello.fingerprint
        )));
    }
    if peer.rank >= hello.world_size || peer.rank == hello.rank {
        return Err(CommError::UnknownRank {
            rank: peer.rank,
            total: hello.world_size,
        });
    }
    if accepted.iter().any(|(r, _)| *r == peer.rank) {
        return Err(CommError::Codec(format!(
            "duplicate incoming connection from rank {}",
            peer.rank
        )));
    }
    hello.write_to(&mut stream)?;
    stream
        .set_read_timeout(None)
        .map_err(|e| CommError::Io(format!("incoming socket setup: {e}")))?;
    Ok((peer.rank, stream))
}

/// One connect + handshake attempt against a peer.  An `Io` failure is
/// transient (listener not up yet, ack delayed behind a stray connection the
/// acceptor is busy timing out) and worth retrying; a `Codec`/`UnknownRank`
/// failure is a real misconfiguration and aborts immediately.
fn try_dial_peer(peer: usize, addr: &str, hello: Handshake) -> Result<TcpStream, CommError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| CommError::Io(format!("connect {addr}: {e}")))?;
    stream
        .set_nodelay(true)
        .and_then(|()| stream.set_read_timeout(Some(Duration::from_secs(5))))
        .map_err(|e| CommError::Io(format!("outgoing socket setup: {e}")))?;
    hello.write_to(&mut stream)?;
    let ack = Handshake::read_from(&mut stream)?;
    if ack.rank != peer {
        return Err(CommError::Codec(format!(
            "dialed {addr} expecting rank {peer}, found rank {} (mis-wired address list?)",
            ack.rank
        )));
    }
    if ack.world_size != hello.world_size || ack.fingerprint != hello.fingerprint {
        return Err(CommError::Codec(format!(
            "rank {peer} at {addr} disagrees on world/fingerprint"
        )));
    }
    stream
        .set_read_timeout(None)
        .map_err(|e| CommError::Io(format!("outgoing socket setup: {e}")))?;
    Ok(stream)
}

fn dial_peer(
    local_rank: usize,
    peer: usize,
    addr: &str,
    hello: Handshake,
    deadline: Instant,
) -> Result<TcpStream, CommError> {
    loop {
        match try_dial_peer(peer, addr, hello) {
            Ok(stream) => return Ok(stream),
            // Genuine protocol mismatches never heal with a retry.
            Err(e @ (CommError::Codec(_) | CommError::UnknownRank { .. })) => return Err(e),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(CommError::Io(format!(
                        "rank {local_rank}: could not reach rank {peer} at {addr} before the deadline: {e}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Drains one peer's outbox onto its socket, realizing modelled delays.
/// Exits when the outbox closes (transport dropped) or the write fails
/// (peer died) — the closed channel is what turns later sends into
/// [`CommError::Disconnected`].
fn writer_loop(stream: TcpStream, rx: Receiver<OutFrame>) {
    let mut writer = std::io::BufWriter::new(stream);
    while let Ok(frame) = rx.recv() {
        if !frame.delay.is_zero() {
            std::thread::sleep(frame.delay);
        }
        if writer.write_all(&frame.bytes).is_err() || writer.flush().is_err() {
            return;
        }
    }
    let _ = writer.flush();
}

/// Decodes frames from one incoming stream into the shared inbox.  Exits on
/// EOF or a torn frame; the sender rank of the envelope is trusted only
/// after the handshake pinned who is on the other end.  A clean disconnect
/// (peer finished and closed) is silent; anything else — a torn frame, a
/// version mismatch, a mid-frame crash — is reported on stderr so worker
/// logs name the cause instead of the rank just timing out later.
fn reader_loop(peer: usize, stream: TcpStream, inbox: Sender<Message>) {
    let mut reader = std::io::BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok((header, msg)) => {
                debug_assert_eq!(header.from as usize, peer, "envelope rank mismatch");
                if inbox.send(msg).is_err() {
                    return;
                }
            }
            Err(CommError::Disconnected { .. }) => return,
            Err(e) => {
                eprintln!("msplit-comm: stream from rank {peer} failed: {e}");
                return;
            }
        }
    }
}

/// A connected TCP endpoint for one rank of the mesh.
///
/// Implements [`Transport`] from this single rank's point of view: `send`
/// must originate from the local rank and `recv`/`try_recv`/`recv_timeout`
/// only serve the local inbox; addressing any other rank's inbox returns
/// [`CommError::UnknownRank`].  For a whole-mesh view inside one process
/// (every rank's endpoint behind one `Transport`), see [`LoopbackMesh`].
pub struct TcpTransport {
    local_rank: usize,
    world: usize,
    outboxes: Mutex<Vec<Option<Sender<OutFrame>>>>,
    inbox_tx: Sender<Message>,
    inbox_rx: Receiver<Message>,
    /// Reader threads still attached to live peer streams.  The transport
    /// holds its own `inbox_tx` (for self-sends), so the channel alone can
    /// never observe "every peer is gone" — this counter is what lets the
    /// blocking receives report [`CommError::Disconnected`] on a dead mesh
    /// instead of hanging, matching the in-process transport's contract.
    live_readers: Arc<std::sync::atomic::AtomicUsize>,
    stats: Mutex<LinkStats>,
    delay: Option<LinkDelay>,
    writer_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpTransport {
    /// This endpoint's rank.
    pub fn local_rank(&self) -> usize {
        self.local_rank
    }

    /// A snapshot of the traffic sent by this endpoint.
    pub fn stats(&self) -> LinkStats {
        self.stats.lock().clone()
    }

    /// Closes the outboxes and waits for the writer threads to drain and
    /// exit, guaranteeing queued frames (e.g. a final `Halt` broadcast) hit
    /// the sockets.  Called automatically on drop.
    pub fn shutdown(&self) {
        for slot in self.outboxes.lock().iter_mut() {
            *slot = None;
        }
        let handles: Vec<_> = self.writer_handles.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for TcpTransport {
    fn num_ranks(&self) -> usize {
        self.world
    }

    fn send(&self, from: usize, to: usize, msg: Message) -> Result<(), CommError> {
        if from != self.local_rank {
            return Err(CommError::UnknownRank {
                rank: from,
                total: self.world,
            });
        }
        if to >= self.world {
            return Err(CommError::UnknownRank {
                rank: to,
                total: self.world,
            });
        }
        // Fail loudly here rather than desync the peer's stream: a frame the
        // receiver would reject as corrupt must never leave the sender.
        crate::wire::check_frame_size(&msg)?;
        let bytes = msg.encoded_len();
        self.stats.lock().record(from, to, bytes);
        if to == self.local_rank {
            return self
                .inbox_tx
                .send(msg)
                .map_err(|_| CommError::Disconnected { rank: to });
        }
        let delay = self
            .delay
            .as_ref()
            .map_or(Duration::ZERO, |d| d.sleep_for(from, to, bytes));
        let frame = OutFrame {
            bytes: encode_frame(from, &msg),
            delay,
        };
        let outbox = self.outboxes.lock()[to].clone();
        match outbox {
            Some(tx) => tx
                .send(frame)
                .map_err(|_| CommError::Disconnected { rank: to }),
            None => Err(CommError::Disconnected { rank: to }),
        }
    }

    fn recv(&self, rank: usize) -> Result<Message, CommError> {
        self.check_local(rank)?;
        loop {
            match self.inbox_rx.recv_timeout(DEAD_MESH_POLL) {
                Ok(msg) => return Ok(msg),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    // Queued messages drain before this branch can hit, so a
                    // dead mesh with an empty inbox is a genuine disconnect.
                    if self.mesh_dead() {
                        return Err(CommError::Disconnected { rank });
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank })
                }
            }
        }
    }

    fn try_recv(&self, rank: usize) -> Result<Option<Message>, CommError> {
        self.check_local(rank)?;
        match self.inbox_rx.try_recv() {
            Ok(msg) => Ok(Some(msg)),
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => {
                Err(CommError::Disconnected { rank })
            }
        }
    }

    fn recv_timeout(&self, rank: usize, timeout: Duration) -> Result<Message, CommError> {
        self.check_local(rank)?;
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout { rank });
            }
            match self
                .inbox_rx
                .recv_timeout(DEAD_MESH_POLL.min(deadline - now))
            {
                Ok(msg) => return Ok(msg),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => {
                    if self.mesh_dead() {
                        return Err(CommError::Disconnected { rank });
                    }
                }
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank })
                }
            }
        }
    }
}

/// Poll granularity at which blocked receives re-check mesh liveness.
const DEAD_MESH_POLL: Duration = Duration::from_millis(50);

impl TcpTransport {
    /// Every peer's incoming stream is gone (their processes died or shut
    /// down).  Meaningless for a 1-rank world, which has no peers.
    fn mesh_dead(&self) -> bool {
        self.world > 1 && self.live_readers.load(std::sync::atomic::Ordering::SeqCst) == 0
    }

    fn check_local(&self, rank: usize) -> Result<(), CommError> {
        if rank != self.local_rank {
            return Err(CommError::UnknownRank {
                rank,
                total: self.world,
            });
        }
        Ok(())
    }
}

/// Every rank's TCP endpoint of one mesh, inside one process, behind the
/// whole-world [`Transport`] interface the threaded drivers expect.
///
/// This is what lets the existing synchronous and asynchronous drivers run
/// **unchanged** over real sockets: `send(from, to, …)` routes through rank
/// `from`'s endpoint and `recv(rank)` reads rank `rank`'s inbox, while every
/// byte genuinely crosses a TCP connection on the loopback interface.
///
/// One semantic difference from [`crate::InProcTransport`]: a send completes
/// when the frame is *queued*, not when it is delivered, so a message can
/// arrive after a barrier the sender has already passed.  The drivers
/// tolerate late slices by construction (stamped, stale-tolerant dependency
/// data), but the synchronous driver's iterates are no longer bitwise
/// reproducible against the in-process transport; multi-process lockstep is
/// provided by the message-based protocol in `msplit_core::distributed`.
pub struct LoopbackMesh {
    endpoints: Vec<Arc<TcpTransport>>,
}

impl LoopbackMesh {
    /// Builds a `world`-rank mesh over ephemeral 127.0.0.1 ports.
    pub fn new(world: usize, opts: TcpOptions) -> Result<Arc<Self>, CommError> {
        if world == 0 {
            return Err(CommError::Io("a mesh needs at least one rank".to_string()));
        }
        let mut bound = Vec::with_capacity(world);
        let mut addrs = Vec::with_capacity(world);
        for rank in 0..world {
            let b = BoundTcpTransport::bind(rank, "127.0.0.1:0")?;
            addrs.push(b.local_addr()?);
            bound.push(b);
        }
        // All endpoints must dial concurrently — each blocks until its
        // incoming side is complete.
        let addrs = Arc::new(addrs);
        let handles: Vec<_> = bound
            .into_iter()
            .map(|b| {
                let addrs = Arc::clone(&addrs);
                let opts = opts.clone();
                std::thread::spawn(move || b.connect(&addrs, opts))
            })
            .collect();
        let mut endpoints = Vec::with_capacity(world);
        for handle in handles {
            endpoints.push(handle.join().unwrap_or_else(|_| {
                Err(CommError::Io("mesh connect thread panicked".to_string()))
            })?);
        }
        Ok(Arc::new(LoopbackMesh { endpoints }))
    }

    /// Rank `rank`'s endpoint (e.g. to hand to a worker thread).
    pub fn endpoint(&self, rank: usize) -> Arc<TcpTransport> {
        Arc::clone(&self.endpoints[rank])
    }

    /// Merged traffic statistics over every endpoint.
    pub fn stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for ep in &self.endpoints {
            let s = ep.stats();
            for (&(f, t), &m) in &s.messages {
                *total.messages.entry((f, t)).or_default() += m;
            }
            for (&(f, t), &b) in &s.bytes {
                *total.bytes.entry((f, t)).or_default() += b;
            }
        }
        total
    }
}

impl Transport for LoopbackMesh {
    fn num_ranks(&self) -> usize {
        self.endpoints.len()
    }

    fn send(&self, from: usize, to: usize, msg: Message) -> Result<(), CommError> {
        if from >= self.endpoints.len() {
            return Err(CommError::UnknownRank {
                rank: from,
                total: self.endpoints.len(),
            });
        }
        self.endpoints[from].send(from, to, msg)
    }

    fn recv(&self, rank: usize) -> Result<Message, CommError> {
        self.check_rank(rank)?;
        self.endpoints[rank].recv(rank)
    }

    fn try_recv(&self, rank: usize) -> Result<Option<Message>, CommError> {
        self.check_rank(rank)?;
        self.endpoints[rank].try_recv(rank)
    }

    fn recv_timeout(&self, rank: usize, timeout: Duration) -> Result<Message, CommError> {
        self.check_rank(rank)?;
        self.endpoints[rank].recv_timeout(rank, timeout)
    }
}

impl LoopbackMesh {
    fn check_rank(&self, rank: usize) -> Result<(), CommError> {
        if rank >= self.endpoints.len() {
            return Err(CommError::UnknownRank {
                rank,
                total: self.endpoints.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solution(from: usize, iteration: u64, n: usize) -> Message {
        Message::Solution {
            from,
            iteration,
            offset: 3,
            values: (0..n).map(|i| i as f64 * 0.5 - 1.0).collect(),
        }
    }

    #[test]
    fn two_rank_mesh_exchanges_messages_both_ways() {
        let mesh = LoopbackMesh::new(2, TcpOptions::default()).unwrap();
        let (a, b) = (mesh.endpoint(0), mesh.endpoint(1));
        a.send(0, 1, solution(0, 1, 8)).unwrap();
        b.send(1, 0, Message::Halt).unwrap();
        assert_eq!(
            b.recv_timeout(1, Duration::from_secs(5)).unwrap(),
            solution(0, 1, 8)
        );
        assert_eq!(
            a.recv_timeout(0, Duration::from_secs(5)).unwrap(),
            Message::Halt
        );
    }

    #[test]
    fn per_link_order_is_preserved() {
        let mesh = LoopbackMesh::new(2, TcpOptions::default()).unwrap();
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        for iter in 1..=50u64 {
            a.send(0, 1, solution(0, iter, 4)).unwrap();
        }
        for iter in 1..=50u64 {
            let got = b.recv_timeout(1, Duration::from_secs(5)).unwrap();
            assert_eq!(got, solution(0, iter, 4), "iteration {iter}");
        }
    }

    #[test]
    fn endpoint_rejects_foreign_ranks() {
        let mesh = LoopbackMesh::new(2, TcpOptions::default()).unwrap();
        let a = mesh.endpoint(0);
        assert!(matches!(
            a.send(1, 0, Message::Halt),
            Err(CommError::UnknownRank { rank: 1, .. })
        ));
        assert!(matches!(
            a.send(0, 7, Message::Halt),
            Err(CommError::UnknownRank { rank: 7, .. })
        ));
        assert!(a.recv_timeout(1, Duration::from_millis(1)).is_err());
        assert!(a.try_recv(1).is_err());
        assert_eq!(a.local_rank(), 0);
        assert_eq!(a.num_ranks(), 2);
    }

    #[test]
    fn self_send_loops_back_through_the_inbox() {
        let mesh = LoopbackMesh::new(2, TcpOptions::default()).unwrap();
        let a = mesh.endpoint(0);
        a.send(0, 0, Message::Halt).unwrap();
        assert_eq!(a.try_recv(0).unwrap(), Some(Message::Halt));
    }

    #[test]
    fn stats_account_sent_traffic() {
        let mesh = LoopbackMesh::new(3, TcpOptions::default()).unwrap();
        let a = mesh.endpoint(0);
        let msg = solution(0, 1, 10);
        let expected = msg.encoded_len();
        a.send(0, 1, msg.clone()).unwrap();
        a.send(0, 2, msg).unwrap();
        let stats = a.stats();
        assert_eq!(stats.total_messages(), 2);
        assert_eq!(stats.bytes[&(0, 1)], expected);
        let merged = mesh.stats();
        assert_eq!(merged.total_messages(), 2);
    }

    #[test]
    fn send_to_dead_peer_returns_disconnected() {
        // Build the two endpoints by hand (LoopbackMesh would keep the dead
        // rank's endpoint alive through its own Arc).
        let b0 = BoundTcpTransport::bind(0, "127.0.0.1:0").unwrap();
        let b1 = BoundTcpTransport::bind(1, "127.0.0.1:0").unwrap();
        let addrs = vec![b0.local_addr().unwrap(), b1.local_addr().unwrap()];
        let addrs2 = addrs.clone();
        let h = std::thread::spawn(move || b1.connect(&addrs2, TcpOptions::default()).unwrap());
        let a = b0.connect(&addrs, TcpOptions::default()).unwrap();
        let b = h.join().unwrap();
        // Kill rank 1's endpoint entirely: writers, inbox and sockets close.
        drop(b);
        // Rank 0's writer discovers the death on a failed write; the send
        // that observes the closed outbox reports Disconnected.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match a.send(0, 1, solution(0, 1, 64)) {
                Err(CommError::Disconnected { rank: 1 }) => break,
                Ok(()) => {
                    assert!(Instant::now() < deadline, "send never observed the death");
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn blocking_recv_on_a_dead_mesh_returns_disconnected() {
        let b0 = BoundTcpTransport::bind(0, "127.0.0.1:0").unwrap();
        let b1 = BoundTcpTransport::bind(1, "127.0.0.1:0").unwrap();
        let addrs = vec![b0.local_addr().unwrap(), b1.local_addr().unwrap()];
        let addrs2 = addrs.clone();
        let h = std::thread::spawn(move || b1.connect(&addrs2, TcpOptions::default()).unwrap());
        let a = b0.connect(&addrs, TcpOptions::default()).unwrap();
        let b = h.join().unwrap();
        b.send(1, 0, Message::Halt).unwrap();
        // The peer dies; its shutdown flushes the queued frame first.
        drop(b);
        // Queued traffic still drains...
        assert_eq!(a.recv(0).unwrap(), Message::Halt);
        // ...then the dead mesh surfaces as Disconnected instead of a hang.
        assert!(matches!(
            a.recv(0),
            Err(CommError::Disconnected { rank: 0 })
        ));
        assert!(matches!(
            a.recv_timeout(0, Duration::from_secs(30)),
            Err(CommError::Disconnected { .. })
        ));
    }

    #[test]
    fn mismatched_fingerprints_fail_the_handshake() {
        let b0 = BoundTcpTransport::bind(0, "127.0.0.1:0").unwrap();
        let b1 = BoundTcpTransport::bind(1, "127.0.0.1:0").unwrap();
        let addrs = vec![b0.local_addr().unwrap(), b1.local_addr().unwrap()];
        let short = Duration::from_millis(1500);
        let addrs2 = addrs.clone();
        let h = std::thread::spawn(move || {
            b1.connect(
                &addrs2,
                TcpOptions {
                    fingerprint: 2,
                    connect_timeout: short,
                    ..Default::default()
                },
            )
        });
        let r0 = b0.connect(
            &addrs,
            TcpOptions {
                fingerprint: 1,
                connect_timeout: short,
                ..Default::default()
            },
        );
        let r1 = h.join().unwrap();
        assert!(r0.is_err() || r1.is_err());
    }

    #[test]
    fn delayed_mesh_still_delivers() {
        let mesh = LoopbackMesh::new(
            2,
            TcpOptions {
                delay: Some(LinkDelay {
                    grid: msplit_grid::cluster::cluster3(),
                    time_scale: 1e-4,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        a.send(0, 1, solution(0, 1, 100)).unwrap();
        assert_eq!(
            b.recv_timeout(1, Duration::from_secs(5)).unwrap(),
            solution(0, 1, 100)
        );
    }
}
