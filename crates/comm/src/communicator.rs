//! MPI-like per-rank communicator.
//!
//! The synchronous multisplitting driver needs exactly the primitives the
//! paper's MPI implementation used: point-to-point sends of solution slices,
//! blocking receives, a barrier at the end of each outer iteration and an
//! allreduce to agree on global convergence.  The asynchronous driver only
//! uses the point-to-point half plus [`crate::convergence`].

use crate::message::Message;
use crate::transport::Transport;
use crate::CommError;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Shared state backing barriers and allreduce operations.
struct CollectiveState {
    mutex: Mutex<CollectiveInner>,
    condvar: Condvar,
    num_ranks: usize,
}

struct CollectiveInner {
    /// Number of ranks that have arrived at the current collective.
    arrived: usize,
    /// Generation counter distinguishing consecutive collectives.
    generation: u64,
    /// Accumulated maximum for `allreduce_max`.
    acc_max: f64,
    /// Accumulated logical-and for `allreduce_and`.
    acc_and: bool,
    /// Result published for the previous generation.
    result_max: f64,
    result_and: bool,
}

impl CollectiveState {
    fn new(num_ranks: usize) -> Arc<Self> {
        Arc::new(CollectiveState {
            mutex: Mutex::new(CollectiveInner {
                arrived: 0,
                generation: 0,
                acc_max: f64::NEG_INFINITY,
                acc_and: true,
                result_max: f64::NEG_INFINITY,
                result_and: true,
            }),
            condvar: Condvar::new(),
            num_ranks,
        })
    }

    /// Generic synchronizing reduction: contributes `(value, flag)` and
    /// returns the reduced `(max, and)` once every rank has contributed.
    fn reduce(&self, value: f64, flag: bool) -> (f64, bool) {
        let mut inner = self.mutex.lock();
        let my_generation = inner.generation;
        inner.acc_max = inner.acc_max.max(value);
        inner.acc_and = inner.acc_and && flag;
        inner.arrived += 1;
        if inner.arrived == self.num_ranks {
            // Last arriver publishes the result and opens the next generation.
            inner.result_max = inner.acc_max;
            inner.result_and = inner.acc_and;
            inner.acc_max = f64::NEG_INFINITY;
            inner.acc_and = true;
            inner.arrived = 0;
            inner.generation += 1;
            self.condvar.notify_all();
            return (inner.result_max, inner.result_and);
        }
        while inner.generation == my_generation {
            self.condvar.wait(&mut inner);
        }
        (inner.result_max, inner.result_and)
    }
}

/// A group of communicators sharing one transport, one per rank.
pub struct CommGroup {
    transport: Arc<dyn Transport>,
    collective: Arc<CollectiveState>,
}

impl CommGroup {
    /// Creates a group over the given transport.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        let collective = CollectiveState::new(transport.num_ranks());
        CommGroup {
            transport,
            collective,
        }
    }

    /// Number of ranks in the group.
    pub fn num_ranks(&self) -> usize {
        self.transport.num_ranks()
    }

    /// Produces the per-rank communicators (one per thread).
    pub fn communicators(&self) -> Vec<Communicator> {
        (0..self.num_ranks())
            .map(|rank| Communicator {
                rank,
                transport: Arc::clone(&self.transport),
                collective: Arc::clone(&self.collective),
            })
            .collect()
    }
}

/// The per-rank handle used by a multisplitting processor thread.
#[derive(Clone)]
pub struct Communicator {
    rank: usize,
    transport: Arc<dyn Transport>,
    collective: Arc<CollectiveState>,
}

impl Communicator {
    /// This processor's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of processors.
    pub fn num_ranks(&self) -> usize {
        self.transport.num_ranks()
    }

    /// Sends a message to `to`.
    pub fn send(&self, to: usize, msg: Message) -> Result<(), CommError> {
        self.transport.send(self.rank, to, msg)
    }

    /// Blocking receive from this rank's inbox.
    pub fn recv(&self) -> Result<Message, CommError> {
        self.transport.recv(self.rank)
    }

    /// Non-blocking receive from this rank's inbox.
    pub fn try_recv(&self) -> Result<Option<Message>, CommError> {
        self.transport.try_recv(self.rank)
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, CommError> {
        self.transport.recv_timeout(self.rank, timeout)
    }

    /// Drains every message currently queued in the inbox.
    pub fn drain(&self) -> Result<Vec<Message>, CommError> {
        let mut out = Vec::new();
        while let Some(msg) = self.try_recv()? {
            out.push(msg);
        }
        Ok(out)
    }

    /// Broadcasts a message to every other rank.
    pub fn broadcast(&self, msg: &Message) -> Result<(), CommError> {
        for to in 0..self.num_ranks() {
            if to != self.rank {
                self.send(to, msg.clone())?;
            }
        }
        Ok(())
    }

    /// Synchronization barrier across all ranks.
    pub fn barrier(&self) {
        let _ = self.collective.reduce(0.0, true);
    }

    /// Allreduce returning the maximum of every rank's `value` (used for the
    /// global residual norm of the synchronous convergence test).
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.collective.reduce(value, true).0
    }

    /// Allreduce returning the logical AND of every rank's `flag` (used for
    /// the "everybody locally converged" decision).
    pub fn allreduce_and(&self, flag: bool) -> bool {
        self.collective.reduce(f64::NEG_INFINITY, flag).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;
    use std::thread;

    fn group(n: usize) -> Vec<Communicator> {
        CommGroup::new(InProcTransport::new(n)).communicators()
    }

    #[test]
    fn rank_and_size() {
        let comms = group(3);
        assert_eq!(comms.len(), 3);
        assert_eq!(comms[1].rank(), 1);
        assert_eq!(comms[1].num_ranks(), 3);
    }

    #[test]
    fn point_to_point_and_drain() {
        let comms = group(2);
        comms[0].send(1, Message::Halt).unwrap();
        comms[0]
            .send(
                1,
                Message::ConvergenceVote {
                    from: 0,
                    iteration: 3,
                    converged: true,
                },
            )
            .unwrap();
        let msgs = comms[1].drain().unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(comms[1].drain().unwrap().len(), 0);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let comms = group(4);
        comms[2].broadcast(&Message::Halt).unwrap();
        for (rank, c) in comms.iter().enumerate() {
            let got = c.drain().unwrap();
            if rank == 2 {
                assert!(got.is_empty());
            } else {
                assert_eq!(got, vec![Message::Halt]);
            }
        }
    }

    #[test]
    fn allreduce_max_and_and_across_threads() {
        let comms = group(4);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let r = c.rank() as f64;
                    let max = c.allreduce_max(r);
                    let all = c.allreduce_and(c.rank() != 2);
                    (max, all)
                })
            })
            .collect();
        for h in handles {
            let (max, all) = h.join().unwrap();
            assert_eq!(max, 3.0);
            assert!(!all);
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock_or_mix_generations() {
        let comms = group(3);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let mut results = Vec::new();
                    for iter in 0..50u64 {
                        let v = (c.rank() as f64) + (iter as f64) * 10.0;
                        results.push(c.allreduce_max(v));
                        c.barrier();
                    }
                    results
                })
            })
            .collect();
        let all: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for iter in 0..50 {
            let expected = 2.0 + (iter as f64) * 10.0;
            for r in &all {
                assert_eq!(r[iter], expected, "iteration {iter}");
            }
        }
    }

    #[test]
    fn barrier_orders_phases() {
        // After the barrier every rank must observe the message sent before it.
        let comms = group(2);
        let c0 = comms[0].clone();
        let c1 = comms[1].clone();
        let sender = thread::spawn(move || {
            c0.send(1, Message::Halt).unwrap();
            c0.barrier();
        });
        let receiver = thread::spawn(move || {
            c1.barrier();
            c1.try_recv().unwrap()
        });
        sender.join().unwrap();
        assert_eq!(receiver.join().unwrap(), Some(Message::Halt));
    }
}
