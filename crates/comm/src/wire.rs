//! Wire framing for socket transports.
//!
//! The in-process transport hands [`Message`] values over channels; a socket
//! carries bytes.  This module defines the frame layout used by
//! [`crate::tcp::TcpTransport`]:
//!
//! ```text
//! +---------+------------+----------------+-------------+-----------------+
//! | version | from (u32) | iteration(u64) | len (u32)   | payload (len B) |
//! |  1 byte | LE         | LE             | LE          | Message::encode |
//! +---------+------------+----------------+-------------+-----------------+
//! ```
//!
//! The `from` and `iteration` headers duplicate information most payloads
//! carry so that a receiver (or a packet trace) can route and order frames
//! without decoding the body — the same reason MPI puts the rank in the
//! envelope.  Control messages without a sender or iteration use zero.
//!
//! Connection establishment uses a fixed-size [`Handshake`] carrying the
//! peer's rank, the world size and the job fingerprint (the matrix
//! fingerprint in the distributed solver), so mis-wired address lists and
//! mismatched partitions fail deterministically at connect time instead of
//! corrupting a solve.

use crate::message::Message;
use crate::CommError;
use bytes::Bytes;
use std::io::{Read, Write};

/// Version byte of the frame layout; bump on any incompatible change.
pub const WIRE_VERSION: u8 = 1;

/// Magic prefix of the connection handshake.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"MSPW";

/// Bytes of a frame header: version + from + iteration + payload length.
pub const FRAME_HEADER_LEN: usize = 1 + 4 + 8 + 4;

/// Upper bound on a frame payload; anything larger is treated as stream
/// corruption rather than an allocation request (a 64M-row solution slice
/// would be ~512 MB — far beyond what one band exchanges per iteration).
pub const MAX_FRAME_PAYLOAD: usize = 256 * 1024 * 1024;

/// Parsed frame header (the envelope preceding every payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Wire version the frame was encoded with.
    pub version: u8,
    /// Sender rank (0 for control messages without a sender).
    pub from: u32,
    /// Sender's outer-iteration counter (0 when not applicable).
    pub iteration: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
}

fn message_iteration(msg: &Message) -> u64 {
    match msg {
        Message::Solution { iteration, .. }
        | Message::SolutionBatch { iteration, .. }
        | Message::ConvergenceVote { iteration, .. }
        | Message::GlobalConverged { iteration }
        | Message::SpeedReport { iteration, .. }
        | Message::VoteAggregate { iteration, .. }
        | Message::StabilitySummary { iteration, .. } => *iteration,
        // Serve-protocol frames have no iteration; the envelope slot carries
        // the request id instead so a packet trace can pair a response with
        // its request without decoding bodies.
        Message::SubmitSolve { request_id, .. }
        | Message::SolveResult { request_id, .. }
        | Message::Reject { request_id, .. } => *request_id,
        Message::Halt
        | Message::Heartbeat { .. }
        | Message::Reshape { .. }
        | Message::StatsQuery
        | Message::ServerStats { .. } => 0,
    }
}

/// Returns an error if `msg` would not fit in one frame — callers must
/// check *before* encoding, so an oversized message fails loudly at the
/// send site instead of desyncing the receiver's stream.
pub fn check_frame_size(msg: &Message) -> Result<(), CommError> {
    let len = msg.encoded_len();
    if len > MAX_FRAME_PAYLOAD {
        return Err(CommError::Codec(format!(
            "message of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte frame cap"
        )));
    }
    Ok(())
}

/// Encodes `msg` as one self-contained frame.
pub fn encode_frame(from: usize, msg: &Message) -> Vec<u8> {
    let payload = msg.encode();
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.push(WIRE_VERSION);
    out.extend_from_slice(&(from as u32).to_le_bytes());
    out.extend_from_slice(&message_iteration(msg).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload.as_ref());
    out
}

fn parse_header(raw: &[u8; FRAME_HEADER_LEN]) -> Result<FrameHeader, CommError> {
    let version = raw[0];
    if version != WIRE_VERSION {
        return Err(CommError::Codec(format!(
            "unsupported wire version {version} (expected {WIRE_VERSION})"
        )));
    }
    let from = u32::from_le_bytes(raw[1..5].try_into().expect("4 bytes"));
    let iteration = u64::from_le_bytes(raw[5..13].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(raw[13..17].try_into().expect("4 bytes"));
    if payload_len as usize > MAX_FRAME_PAYLOAD {
        return Err(CommError::Codec(format!(
            "frame payload of {payload_len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
        )));
    }
    Ok(FrameHeader {
        version,
        from,
        iteration,
        payload_len,
    })
}

/// Decodes one frame from an in-memory buffer (used by the torn-frame fuzz
/// tests; sockets use [`read_frame`]).  Trailing bytes after the frame are an
/// error: a frame is self-delimiting, so leftovers mean the caller lost sync.
pub fn decode_frame(buf: &[u8]) -> Result<(FrameHeader, Message), CommError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(CommError::Codec(format!(
            "torn frame: {} bytes, header needs {FRAME_HEADER_LEN}",
            buf.len()
        )));
    }
    let header = parse_header(buf[..FRAME_HEADER_LEN].try_into().expect("header"))?;
    let body = &buf[FRAME_HEADER_LEN..];
    if body.len() != header.payload_len as usize {
        return Err(CommError::Codec(format!(
            "torn frame: header announced {} payload bytes, found {}",
            header.payload_len,
            body.len()
        )));
    }
    let msg = Message::decode(Bytes::from(body.to_vec()))?;
    Ok((header, msg))
}

/// Writes one frame to a stream (no flush; callers batch then flush).
/// Fails cleanly on a message too large to frame.
pub fn write_frame<W: Write>(writer: &mut W, from: usize, msg: &Message) -> Result<(), CommError> {
    check_frame_size(msg)?;
    let frame = encode_frame(from, msg);
    writer
        .write_all(&frame)
        .map_err(|e| CommError::Io(format!("frame write failed: {e}")))
}

/// Reads one complete frame from a stream.
///
/// A clean end-of-stream *before the first header byte* is reported as
/// [`CommError::Disconnected`] with the peer rank unknown (`usize::MAX`); an
/// EOF in the middle of a frame is a codec error (torn frame).
pub fn read_frame<R: Read>(reader: &mut R) -> Result<(FrameHeader, Message), CommError> {
    let mut raw = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < raw.len() {
        match reader.read(&mut raw[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Err(CommError::Disconnected { rank: usize::MAX })
                } else {
                    Err(CommError::Codec(format!(
                        "torn frame: stream closed after {filled} header bytes"
                    )))
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CommError::Io(format!("frame header read failed: {e}"))),
        }
    }
    let header = parse_header(&raw)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    reader.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CommError::Codec("torn frame: stream closed inside the payload".to_string())
        } else {
            CommError::Io(format!("frame payload read failed: {e}"))
        }
    })?;
    let msg = Message::decode(Bytes::from(payload))?;
    Ok((header, msg))
}

/// Connection handshake: who is connecting, how large the world is, and
/// which job (matrix) the peer believes it is solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handshake {
    /// Rank of the endpoint sending the handshake.
    pub rank: usize,
    /// Total number of ranks the sender expects in the mesh.
    pub world_size: usize,
    /// Job fingerprint (the matrix fingerprint in the distributed solver);
    /// both sides must agree or the partitions cannot match.
    pub fingerprint: u64,
}

/// Encoded handshake size: magic + version + rank + world + fingerprint.
pub const HANDSHAKE_LEN: usize = 4 + 1 + 4 + 4 + 8;

impl Handshake {
    /// Serializes the handshake into its fixed-size wire form.
    pub fn encode(&self) -> [u8; HANDSHAKE_LEN] {
        let mut out = [0u8; HANDSHAKE_LEN];
        out[..4].copy_from_slice(&HANDSHAKE_MAGIC);
        out[4] = WIRE_VERSION;
        out[5..9].copy_from_slice(&(self.rank as u32).to_le_bytes());
        out[9..13].copy_from_slice(&(self.world_size as u32).to_le_bytes());
        out[13..21].copy_from_slice(&self.fingerprint.to_le_bytes());
        out
    }

    /// Parses a handshake, validating magic and version.
    pub fn decode(raw: &[u8; HANDSHAKE_LEN]) -> Result<Self, CommError> {
        if raw[..4] != HANDSHAKE_MAGIC {
            return Err(CommError::Codec(
                "bad handshake magic (peer is not an msplit endpoint)".to_string(),
            ));
        }
        if raw[4] != WIRE_VERSION {
            return Err(CommError::Codec(format!(
                "handshake version {} does not match local version {WIRE_VERSION}",
                raw[4]
            )));
        }
        Ok(Handshake {
            rank: u32::from_le_bytes(raw[5..9].try_into().expect("4 bytes")) as usize,
            world_size: u32::from_le_bytes(raw[9..13].try_into().expect("4 bytes")) as usize,
            fingerprint: u64::from_le_bytes(raw[13..21].try_into().expect("8 bytes")),
        })
    }

    /// Writes the handshake to a stream and flushes it.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), CommError> {
        writer
            .write_all(&self.encode())
            .and_then(|()| writer.flush())
            .map_err(|e| CommError::Io(format!("handshake write failed: {e}")))
    }

    /// Reads a handshake from a stream.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Self, CommError> {
        let mut raw = [0u8; HANDSHAKE_LEN];
        reader
            .read_exact(&mut raw)
            .map_err(|e| CommError::Io(format!("handshake read failed: {e}")))?;
        Self::decode(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Solution {
                from: 2,
                iteration: 9,
                offset: 40,
                values: vec![1.0, -2.5, 3.25],
            },
            Message::SolutionBatch {
                from: 1,
                iteration: 4,
                offset: 8,
                columns: vec![vec![0.5, 0.25], vec![-1.0, 2.0]],
            },
            Message::ConvergenceVote {
                from: 3,
                iteration: 17,
                converged: true,
            },
            Message::GlobalConverged { iteration: 21 },
            Message::Halt,
        ]
    }

    #[test]
    fn frame_round_trip_preserves_header_and_payload() {
        for msg in sample_messages() {
            let frame = encode_frame(5, &msg);
            let (header, decoded) = decode_frame(&frame).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(header.version, WIRE_VERSION);
            assert_eq!(header.from, 5);
            assert_eq!(header.payload_len as usize, msg.encoded_len());
            match &msg {
                Message::Solution { iteration, .. } => assert_eq!(header.iteration, *iteration),
                Message::Halt => assert_eq!(header.iteration, 0),
                _ => {}
            }
        }
    }

    #[test]
    fn stream_round_trip_over_a_cursor() {
        let msgs = sample_messages();
        let mut buf: Vec<u8> = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, 1, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for m in &msgs {
            let (header, decoded) = read_frame(&mut cursor).unwrap();
            assert_eq!(&decoded, m);
            assert_eq!(header.from, 1);
        }
        // Clean EOF after the last frame surfaces as a disconnect.
        assert!(matches!(
            read_frame(&mut cursor),
            Err(CommError::Disconnected { .. })
        ));
    }

    #[test]
    fn torn_frames_are_codec_errors_not_panics() {
        let frame = encode_frame(0, &sample_messages()[0]);
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).unwrap_err();
            assert!(matches!(err, CommError::Codec(_)), "cut at {cut}: {err}");
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            let stream_err = read_frame(&mut cursor).unwrap_err();
            assert!(
                matches!(
                    stream_err,
                    CommError::Codec(_) | CommError::Disconnected { .. }
                ),
                "stream cut at {cut}: {stream_err}"
            );
        }
        // Trailing garbage is detected too.
        let mut padded = frame.clone();
        padded.push(0);
        assert!(matches!(decode_frame(&padded), Err(CommError::Codec(_))));
    }

    #[test]
    fn version_and_size_violations_rejected() {
        let mut frame = encode_frame(0, &Message::Halt);
        frame[0] = 99;
        assert!(matches!(decode_frame(&frame), Err(CommError::Codec(_))));

        let mut oversized = encode_frame(0, &Message::Halt);
        oversized[13..17].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_frame(&oversized), Err(CommError::Codec(_))));
    }

    #[test]
    fn handshake_round_trip_and_validation() {
        let hs = Handshake {
            rank: 3,
            world_size: 8,
            fingerprint: 0xFEED_FACE_CAFE_BEEF,
        };
        let mut buf: Vec<u8> = Vec::new();
        hs.write_to(&mut buf).unwrap();
        let back = Handshake::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back, hs);

        let mut bad_magic = hs.encode();
        bad_magic[0] = b'X';
        assert!(Handshake::decode(&bad_magic).is_err());
        let mut bad_version = hs.encode();
        bad_version[4] = 0;
        assert!(Handshake::decode(&bad_version).is_err());
    }
}
