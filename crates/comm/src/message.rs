//! Wire messages exchanged by the multisplitting processors.
//!
//! The dominant traffic is the per-iteration exchange of solution slices
//! (`XSub` sent to every processor that depends on it, step 3 of
//! Algorithm 1).  Convergence votes and the final halt notification complete
//! the protocol.  Messages carry a compact binary encoding so that the
//! transport layer can account exact byte counts against the grid bandwidth
//! model.

use crate::CommError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A message exchanged between two multisplitting processors.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A slice of the solution vector: the sender's `XSub` (or the portion a
    /// dependent processor needs), tagged with the sender's iteration count.
    Solution {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter when the slice was produced.
        iteration: u64,
        /// Global index of the first entry of `values`.
        offset: usize,
        /// The solution values.
        values: Vec<f64>,
    },
    /// A local convergence vote used by the centralized detection scheme.
    ConvergenceVote {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter.
        iteration: u64,
        /// Whether the sender is locally converged.
        converged: bool,
    },
    /// Global convergence decision broadcast by the coordinator.
    GlobalConverged {
        /// Iteration at which global convergence was detected.
        iteration: u64,
    },
    /// Ask the receiver to stop (used to shut down asynchronous receivers).
    Halt,
}

const TAG_SOLUTION: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_GLOBAL: u8 = 3;
const TAG_HALT: u8 = 4;

impl Message {
    /// The rank that produced the message, when it carries one.
    pub fn sender(&self) -> Option<usize> {
        match self {
            Message::Solution { from, .. } | Message::ConvergenceVote { from, .. } => Some(*from),
            _ => None,
        }
    }

    /// Size of the encoded message in bytes — the number charged against the
    /// link bandwidth by the grid model.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::Solution { values, .. } => 1 + 8 + 8 + 8 + 8 + 8 * values.len(),
            Message::ConvergenceVote { .. } => 1 + 8 + 8 + 1,
            Message::GlobalConverged { .. } => 1 + 8,
            Message::Halt => 1,
        }
    }

    /// Encodes the message into a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        match self {
            Message::Solution {
                from,
                iteration,
                offset,
                values,
            } => {
                buf.put_u8(TAG_SOLUTION);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u64_le(*offset as u64);
                buf.put_u64_le(values.len() as u64);
                for v in values {
                    buf.put_f64_le(*v);
                }
            }
            Message::ConvergenceVote {
                from,
                iteration,
                converged,
            } => {
                buf.put_u8(TAG_VOTE);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u8(u8::from(*converged));
            }
            Message::GlobalConverged { iteration } => {
                buf.put_u8(TAG_GLOBAL);
                buf.put_u64_le(*iteration);
            }
            Message::Halt => {
                buf.put_u8(TAG_HALT);
            }
        }
        buf.freeze()
    }

    /// Decodes a message produced by [`Message::encode`].
    pub fn decode(mut data: Bytes) -> Result<Self, CommError> {
        if data.is_empty() {
            return Err(CommError::Codec("empty buffer".to_string()));
        }
        let tag = data.get_u8();
        match tag {
            TAG_SOLUTION => {
                if data.remaining() < 32 {
                    return Err(CommError::Codec("truncated solution header".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let offset = data.get_u64_le() as usize;
                let len = data.get_u64_le() as usize;
                if data.remaining() < 8 * len {
                    return Err(CommError::Codec(format!(
                        "truncated solution payload: expected {len} values"
                    )));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(data.get_f64_le());
                }
                Ok(Message::Solution {
                    from,
                    iteration,
                    offset,
                    values,
                })
            }
            TAG_VOTE => {
                if data.remaining() < 17 {
                    return Err(CommError::Codec("truncated vote".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let converged = data.get_u8() != 0;
                Ok(Message::ConvergenceVote {
                    from,
                    iteration,
                    converged,
                })
            }
            TAG_GLOBAL => {
                if data.remaining() < 8 {
                    return Err(CommError::Codec("truncated global notice".to_string()));
                }
                Ok(Message::GlobalConverged {
                    iteration: data.get_u64_le(),
                })
            }
            TAG_HALT => Ok(Message::Halt),
            other => Err(CommError::Codec(format!("unknown message tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_round_trip() {
        let msg = Message::Solution {
            from: 3,
            iteration: 42,
            offset: 1000,
            values: vec![1.5, -2.25, 0.0, 1e-9],
        };
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.sender(), Some(3));
    }

    #[test]
    fn vote_and_control_round_trip() {
        for msg in [
            Message::ConvergenceVote {
                from: 1,
                iteration: 7,
                converged: true,
            },
            Message::GlobalConverged { iteration: 9 },
            Message::Halt,
        ] {
            let decoded = Message::decode(msg.encode()).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(msg.encode().len(), msg.encoded_len());
        }
        assert_eq!(Message::Halt.sender(), None);
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let msg = Message::Solution {
            from: 0,
            iteration: 1,
            offset: 0,
            values: vec![1.0, 2.0],
        };
        let encoded = msg.encode();
        let truncated = encoded.slice(0..encoded.len() - 4);
        assert!(matches!(
            Message::decode(truncated),
            Err(CommError::Codec(_))
        ));
        assert!(matches!(
            Message::decode(Bytes::new()),
            Err(CommError::Codec(_))
        ));
        assert!(matches!(
            Message::decode(Bytes::from_static(&[99])),
            Err(CommError::Codec(_))
        ));
    }

    #[test]
    fn encoded_len_tracks_payload_size() {
        let small = Message::Solution {
            from: 0,
            iteration: 0,
            offset: 0,
            values: vec![0.0; 10],
        };
        let large = Message::Solution {
            from: 0,
            iteration: 0,
            offset: 0,
            values: vec![0.0; 1000],
        };
        assert_eq!(large.encoded_len() - small.encoded_len(), 8 * 990);
    }
}
