//! Wire messages exchanged by the multisplitting processors.
//!
//! The dominant traffic is the per-iteration exchange of solution slices
//! (`XSub` sent to every processor that depends on it, step 3 of
//! Algorithm 1).  Convergence votes and the final halt notification complete
//! the protocol.  Messages carry a compact binary encoding so that the
//! transport layer can account exact byte counts against the grid bandwidth
//! model.

use crate::CommError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A message exchanged between two multisplitting processors.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A slice of the solution vector: the sender's `XSub` (or the portion a
    /// dependent processor needs), tagged with the sender's iteration count.
    Solution {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter when the slice was produced.
        iteration: u64,
        /// Global index of the first entry of `values`.
        offset: usize,
        /// The solution values.
        values: Vec<f64>,
    },
    /// A batch of solution slices produced by a multi-RHS solve: one slice
    /// per right-hand side of the batch, all sharing the sender, iteration
    /// stamp and offset.  Batching the columns into one message keeps the
    /// per-iteration message count of Algorithm 1 unchanged when a prepared
    /// system serves many right-hand sides at once.
    SolutionBatch {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter when the slices were produced.
        iteration: u64,
        /// Global index of the first entry of every column.
        offset: usize,
        /// One solution slice per right-hand side, all the same length.
        columns: Vec<Vec<f64>>,
    },
    /// A local convergence vote used by the centralized detection scheme.
    ConvergenceVote {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter.
        iteration: u64,
        /// Whether the sender is locally converged.
        converged: bool,
    },
    /// Global convergence decision broadcast by the coordinator.
    GlobalConverged {
        /// Iteration at which global convergence was detected.
        iteration: u64,
    },
    /// A subtree's combined convergence vote, aggregated up a reduction tree
    /// by the tree-structured lockstep detection scheme (`TreeVotes` in the
    /// runtime).  Each interior node ANDs its own vote with its children's
    /// aggregates and forwards one frame to its parent, so the coordinator
    /// receives `arity` frames per decision instead of `P - 1`.
    VoteAggregate {
        /// Sender rank (the subtree root).
        from: usize,
        /// Outer-iteration counter the aggregate belongs to.
        iteration: u64,
        /// AND of every vote in the sender's subtree (sender included).
        converged: bool,
        /// Number of ranks folded into this aggregate — lets the receiver
        /// cross-check that no subtree was silently dropped.
        count: u64,
    },
    /// A rank's local-stability summary, exchanged pseudo-periodically by the
    /// decentralized (coordinator-free) detection scheme: `stable` counts the
    /// consecutive iterations the sender has been locally converged, and each
    /// rank declares global convergence only once every peer's last summary
    /// reports a full stability window.
    StabilitySummary {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter at summary time.
        iteration: u64,
        /// Consecutive locally-converged iterations at the sender (0 resets
        /// on any dissent).
        stable: u64,
    },
    /// Ask the receiver to stop (used to shut down asynchronous receivers).
    Halt,
    /// Liveness probe sent by a rank blocked in a lockstep wait.  Carries no
    /// payload: the *send itself* is the detector — a probe to a dead peer
    /// surfaces [`crate::CommError::Disconnected`] at the sender, which is
    /// how the runtime's heartbeat failure policy notices a rank death
    /// without waiting out the full peer timeout.  Receivers ignore it.
    Heartbeat {
        /// Sender rank.
        from: usize,
    },
    /// Announcement that the job must be re-partitioned.  Broadcast by the
    /// rank that detected a peer death (under `FailurePolicy::Redistribute`)
    /// or by the coordinator when observed iteration speeds have drifted past
    /// the rebalance threshold.  Every receiver abandons the current
    /// iteration loop and reports a reshape outcome so the launcher can
    /// re-derive band ownership and relaunch from the latest checkpoints.
    Reshape {
        /// Sender rank (the detector / coordinator).
        from: usize,
        /// The dead rank that triggered the reshape, or `u64::MAX` encoded
        /// as `None` when the reshape is a speed-drift rebalance.
        dead_rank: Option<usize>,
    },
    /// Periodic per-rank speed report sent to the coordinator (rank 0) so it
    /// can detect when the relative iteration speeds have drifted from the
    /// splitting the job was partitioned with (online rebalancing hook).
    SpeedReport {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter at report time.
        iteration: u64,
        /// Smoothed wall time of one outer iteration, in microseconds.
        step_micros: u64,
    },
    /// A client's solve request to a serve node (the serve-protocol frames
    /// reuse this codec and framing; a serve connection is distinguished by a
    /// handshake with `world_size == 0`).  The matrix and configuration
    /// travel as opaque byte blobs encoded by the serve layer so the wire
    /// crate stays independent of the solver crates.
    SubmitSolve {
        /// Client-chosen identifier echoed in the response; unique per
        /// connection.
        request_id: u64,
        /// Matrix fingerprint; shard routing and cache lookups key on it.
        fingerprint: u64,
        /// Scheduling priority lane (0 = highest), mirroring the engine's
        /// priority lanes.
        priority: u8,
        /// Queue deadline in microseconds (0 = none): if the request cannot
        /// start within this budget the server rejects instead of solving.
        queue_deadline_micros: u64,
        /// Opaque solver configuration (serve-layer codec).
        config: Vec<u8>,
        /// Opaque matrix encoding (serve-layer codec).  Empty when the
        /// client only wants the factorization warmed or believes the
        /// server already holds the matrix.
        matrix: Vec<u8>,
        /// The right-hand side.  Empty marks a cache-warming request: the
        /// server prepares (or confirms) the factorization and replies with
        /// an empty solution.
        rhs: Vec<f64>,
    },
    /// A successful solve (or warm) response.
    SolveResult {
        /// Echo of the request identifier.
        request_id: u64,
        /// Outer iterations the solve took (0 for a warm-only request).
        iterations: u64,
        /// Number of requests served by the sweep that produced this answer
        /// (1 = solo, >1 = coalesced batch).
        coalesced: u64,
        /// Microseconds the request waited before its solve started.
        queue_micros: u64,
        /// The solution vector (empty for a warm-only request).
        x: Vec<f64>,
    },
    /// A load-shed or failure response.
    Reject {
        /// Echo of the request identifier.
        request_id: u64,
        /// Why the request was rejected (see [`RejectCode`]).
        code: RejectCode,
        /// Suggested microseconds to wait before retrying (0 = no hint;
        /// meaningful for [`RejectCode::QueueFull`] and
        /// [`RejectCode::DeadlineExpired`]).
        retry_after_micros: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// A client's request for a stats snapshot.
    StatsQuery,
    /// Snapshot of a serve node's counters, answering [`Message::StatsQuery`].
    ServerStats {
        /// Shard index of the responding node.
        shard: u64,
        /// Requests answered with a [`Message::SolveResult`].
        completed: u64,
        /// Requests answered with a [`Message::Reject`].
        rejected: u64,
        /// Requests that shared a coalesced sweep with at least one other
        /// request.
        coalesced: u64,
        /// Coalesced sweeps executed.
        batches: u64,
        /// Prepared systems evicted from the factorization cache.
        cache_evictions: u64,
        /// Cache lookups that parked behind an in-flight preparation.
        single_flight_waits: u64,
        /// Total microseconds parked behind in-flight preparations.
        single_flight_wait_micros: u64,
        /// Outer iterations served by the sparse/incremental fast path.
        sparse_fastpath_hits: u64,
        /// Outer iterations that fell back to a full dense assembly + solve.
        dense_fallbacks: u64,
        /// Mean reach fraction of sparse-path solves, in parts per million
        /// (fixed-point so the frame stays all-integer).
        mean_reach_ppm: u64,
        /// Current queue depth per priority lane, highest priority first.
        queue_depths: [u64; 3],
    },
}

/// Typed reason carried by [`Message::Reject`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The priority lane (or the whole queue) is at its admission limit;
    /// retry after the hinted backoff.
    QueueFull,
    /// The request's queue deadline expired before a worker could start it.
    DeadlineExpired,
    /// The node is shutting down; retry against another shard.
    ShuttingDown,
    /// The request was malformed (bad matrix/config encoding, fingerprint
    /// mismatch, unknown matrix).  Retrying will not help.
    Invalid,
}

impl RejectCode {
    fn to_u8(self) -> u8 {
        match self {
            RejectCode::QueueFull => 0,
            RejectCode::DeadlineExpired => 1,
            RejectCode::ShuttingDown => 2,
            RejectCode::Invalid => 3,
        }
    }

    fn from_u8(raw: u8) -> Result<Self, CommError> {
        Ok(match raw {
            0 => RejectCode::QueueFull,
            1 => RejectCode::DeadlineExpired,
            2 => RejectCode::ShuttingDown,
            3 => RejectCode::Invalid,
            other => return Err(CommError::Codec(format!("unknown reject code {other}"))),
        })
    }

    /// Whether retrying the same request (possibly elsewhere) can succeed.
    pub fn is_retryable(self) -> bool {
        !matches!(self, RejectCode::Invalid)
    }
}

const TAG_SOLUTION: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_GLOBAL: u8 = 3;
const TAG_HALT: u8 = 4;
const TAG_SOLUTION_BATCH: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;
const TAG_RESHAPE: u8 = 7;
const TAG_SPEED_REPORT: u8 = 8;
const TAG_SUBMIT_SOLVE: u8 = 9;
const TAG_SOLVE_RESULT: u8 = 10;
const TAG_REJECT: u8 = 11;
const TAG_STATS_QUERY: u8 = 12;
const TAG_SERVER_STATS: u8 = 13;
const TAG_VOTE_AGGREGATE: u8 = 14;
const TAG_STABILITY: u8 = 15;

/// `dead_rank` sentinel for a speed-drift reshape (no dead rank).
const NO_DEAD_RANK: u64 = u64::MAX;

/// Reads a `u64`-length-prefixed byte blob, rejecting lengths beyond the
/// remaining buffer so a corrupted header cannot trigger a huge allocation.
fn get_blob(data: &mut Bytes, what: &str) -> Result<Vec<u8>, CommError> {
    if data.remaining() < 8 {
        return Err(CommError::Codec(format!("truncated {what} length")));
    }
    let len = data.get_u64_le() as usize;
    if data.remaining() < len {
        return Err(CommError::Codec(format!(
            "truncated {what}: expected {len} bytes"
        )));
    }
    let mut out = vec![0u8; len];
    data.copy_to_slice(&mut out);
    Ok(out)
}

/// Reads a `u64`-length-prefixed vector of little-endian `f64`s.
fn get_f64s(data: &mut Bytes, what: &str) -> Result<Vec<f64>, CommError> {
    if data.remaining() < 8 {
        return Err(CommError::Codec(format!("truncated {what} length")));
    }
    let len = data.get_u64_le() as usize;
    // `remaining / 8` (not `8 * len`) so a corrupted length cannot overflow.
    if data.remaining() / 8 < len {
        return Err(CommError::Codec(format!(
            "truncated {what}: expected {len} values"
        )));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(data.get_f64_le());
    }
    Ok(out)
}

impl Message {
    /// The rank that produced the message, when it carries one.
    pub fn sender(&self) -> Option<usize> {
        match self {
            Message::Solution { from, .. }
            | Message::SolutionBatch { from, .. }
            | Message::ConvergenceVote { from, .. }
            | Message::Heartbeat { from }
            | Message::Reshape { from, .. }
            | Message::SpeedReport { from, .. }
            | Message::VoteAggregate { from, .. }
            | Message::StabilitySummary { from, .. } => Some(*from),
            _ => None,
        }
    }

    /// Size of the encoded message in bytes — the number charged against the
    /// link bandwidth by the grid model.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::Solution { values, .. } => 1 + 8 + 8 + 8 + 8 + 8 * values.len(),
            Message::SolutionBatch { columns, .. } => {
                let payload: usize = columns.iter().map(|c| 8 + 8 * c.len()).sum();
                1 + 8 + 8 + 8 + 8 + payload
            }
            Message::ConvergenceVote { .. } => 1 + 8 + 8 + 1,
            Message::VoteAggregate { .. } => 1 + 8 + 8 + 1 + 8,
            Message::StabilitySummary { .. } => 1 + 8 + 8 + 8,
            Message::GlobalConverged { .. } => 1 + 8,
            Message::Halt => 1,
            Message::Heartbeat { .. } => 1 + 8,
            Message::Reshape { .. } => 1 + 8 + 8,
            Message::SpeedReport { .. } => 1 + 8 + 8 + 8,
            Message::SubmitSolve {
                config,
                matrix,
                rhs,
                ..
            } => 1 + 8 + 8 + 1 + 8 + (8 + config.len()) + (8 + matrix.len()) + (8 + 8 * rhs.len()),
            Message::SolveResult { x, .. } => 1 + 8 + 8 + 8 + 8 + 8 + 8 * x.len(),
            Message::Reject { detail, .. } => 1 + 8 + 1 + 8 + 8 + detail.len(),
            Message::StatsQuery => 1,
            Message::ServerStats { .. } => 1 + 8 * 11 + 8 * 3,
        }
    }

    /// Encodes the message into a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        match self {
            Message::Solution {
                from,
                iteration,
                offset,
                values,
            } => {
                buf.put_u8(TAG_SOLUTION);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u64_le(*offset as u64);
                buf.put_u64_le(values.len() as u64);
                for v in values {
                    buf.put_f64_le(*v);
                }
            }
            Message::SolutionBatch {
                from,
                iteration,
                offset,
                columns,
            } => {
                buf.put_u8(TAG_SOLUTION_BATCH);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u64_le(*offset as u64);
                buf.put_u64_le(columns.len() as u64);
                for col in columns {
                    buf.put_u64_le(col.len() as u64);
                    for v in col {
                        buf.put_f64_le(*v);
                    }
                }
            }
            Message::ConvergenceVote {
                from,
                iteration,
                converged,
            } => {
                buf.put_u8(TAG_VOTE);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u8(u8::from(*converged));
            }
            Message::VoteAggregate {
                from,
                iteration,
                converged,
                count,
            } => {
                buf.put_u8(TAG_VOTE_AGGREGATE);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u8(u8::from(*converged));
                buf.put_u64_le(*count);
            }
            Message::StabilitySummary {
                from,
                iteration,
                stable,
            } => {
                buf.put_u8(TAG_STABILITY);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u64_le(*stable);
            }
            Message::GlobalConverged { iteration } => {
                buf.put_u8(TAG_GLOBAL);
                buf.put_u64_le(*iteration);
            }
            Message::Halt => {
                buf.put_u8(TAG_HALT);
            }
            Message::Heartbeat { from } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u64_le(*from as u64);
            }
            Message::Reshape { from, dead_rank } => {
                buf.put_u8(TAG_RESHAPE);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(dead_rank.map_or(NO_DEAD_RANK, |r| r as u64));
            }
            Message::SpeedReport {
                from,
                iteration,
                step_micros,
            } => {
                buf.put_u8(TAG_SPEED_REPORT);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u64_le(*step_micros);
            }
            Message::SubmitSolve {
                request_id,
                fingerprint,
                priority,
                queue_deadline_micros,
                config,
                matrix,
                rhs,
            } => {
                buf.put_u8(TAG_SUBMIT_SOLVE);
                buf.put_u64_le(*request_id);
                buf.put_u64_le(*fingerprint);
                buf.put_u8(*priority);
                buf.put_u64_le(*queue_deadline_micros);
                buf.put_u64_le(config.len() as u64);
                buf.put_slice(config);
                buf.put_u64_le(matrix.len() as u64);
                buf.put_slice(matrix);
                buf.put_u64_le(rhs.len() as u64);
                for v in rhs {
                    buf.put_f64_le(*v);
                }
            }
            Message::SolveResult {
                request_id,
                iterations,
                coalesced,
                queue_micros,
                x,
            } => {
                buf.put_u8(TAG_SOLVE_RESULT);
                buf.put_u64_le(*request_id);
                buf.put_u64_le(*iterations);
                buf.put_u64_le(*coalesced);
                buf.put_u64_le(*queue_micros);
                buf.put_u64_le(x.len() as u64);
                for v in x {
                    buf.put_f64_le(*v);
                }
            }
            Message::Reject {
                request_id,
                code,
                retry_after_micros,
                detail,
            } => {
                buf.put_u8(TAG_REJECT);
                buf.put_u64_le(*request_id);
                buf.put_u8(code.to_u8());
                buf.put_u64_le(*retry_after_micros);
                buf.put_u64_le(detail.len() as u64);
                buf.put_slice(detail.as_bytes());
            }
            Message::StatsQuery => {
                buf.put_u8(TAG_STATS_QUERY);
            }
            Message::ServerStats {
                shard,
                completed,
                rejected,
                coalesced,
                batches,
                cache_evictions,
                single_flight_waits,
                single_flight_wait_micros,
                sparse_fastpath_hits,
                dense_fallbacks,
                mean_reach_ppm,
                queue_depths,
            } => {
                buf.put_u8(TAG_SERVER_STATS);
                buf.put_u64_le(*shard);
                buf.put_u64_le(*completed);
                buf.put_u64_le(*rejected);
                buf.put_u64_le(*coalesced);
                buf.put_u64_le(*batches);
                buf.put_u64_le(*cache_evictions);
                buf.put_u64_le(*single_flight_waits);
                buf.put_u64_le(*single_flight_wait_micros);
                buf.put_u64_le(*sparse_fastpath_hits);
                buf.put_u64_le(*dense_fallbacks);
                buf.put_u64_le(*mean_reach_ppm);
                for d in queue_depths {
                    buf.put_u64_le(*d);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a message produced by [`Message::encode`].
    pub fn decode(mut data: Bytes) -> Result<Self, CommError> {
        if data.is_empty() {
            return Err(CommError::Codec("empty buffer".to_string()));
        }
        let tag = data.get_u8();
        match tag {
            TAG_SOLUTION => {
                if data.remaining() < 32 {
                    return Err(CommError::Codec("truncated solution header".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let offset = data.get_u64_le() as usize;
                let len = data.get_u64_le() as usize;
                // `remaining / 8` (not `8 * len`) so a corrupted length
                // cannot overflow the comparison.
                if data.remaining() / 8 < len {
                    return Err(CommError::Codec(format!(
                        "truncated solution payload: expected {len} values"
                    )));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(data.get_f64_le());
                }
                Ok(Message::Solution {
                    from,
                    iteration,
                    offset,
                    values,
                })
            }
            TAG_SOLUTION_BATCH => {
                if data.remaining() < 32 {
                    return Err(CommError::Codec("truncated batch header".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let offset = data.get_u64_le() as usize;
                let ncols = data.get_u64_le() as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    if data.remaining() < 8 {
                        return Err(CommError::Codec("truncated batch column".to_string()));
                    }
                    let len = data.get_u64_le() as usize;
                    if data.remaining() / 8 < len {
                        return Err(CommError::Codec(format!(
                            "truncated batch column payload: expected {len} values"
                        )));
                    }
                    let mut col = Vec::with_capacity(len);
                    for _ in 0..len {
                        col.push(data.get_f64_le());
                    }
                    columns.push(col);
                }
                Ok(Message::SolutionBatch {
                    from,
                    iteration,
                    offset,
                    columns,
                })
            }
            TAG_VOTE => {
                if data.remaining() < 17 {
                    return Err(CommError::Codec("truncated vote".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let converged = data.get_u8() != 0;
                Ok(Message::ConvergenceVote {
                    from,
                    iteration,
                    converged,
                })
            }
            TAG_VOTE_AGGREGATE => {
                if data.remaining() < 25 {
                    return Err(CommError::Codec("truncated vote aggregate".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let converged = data.get_u8() != 0;
                let count = data.get_u64_le();
                Ok(Message::VoteAggregate {
                    from,
                    iteration,
                    converged,
                    count,
                })
            }
            TAG_STABILITY => {
                if data.remaining() < 24 {
                    return Err(CommError::Codec("truncated stability summary".to_string()));
                }
                Ok(Message::StabilitySummary {
                    from: data.get_u64_le() as usize,
                    iteration: data.get_u64_le(),
                    stable: data.get_u64_le(),
                })
            }
            TAG_GLOBAL => {
                if data.remaining() < 8 {
                    return Err(CommError::Codec("truncated global notice".to_string()));
                }
                Ok(Message::GlobalConverged {
                    iteration: data.get_u64_le(),
                })
            }
            TAG_HALT => Ok(Message::Halt),
            TAG_HEARTBEAT => {
                if data.remaining() < 8 {
                    return Err(CommError::Codec("truncated heartbeat".to_string()));
                }
                Ok(Message::Heartbeat {
                    from: data.get_u64_le() as usize,
                })
            }
            TAG_RESHAPE => {
                if data.remaining() < 16 {
                    return Err(CommError::Codec("truncated reshape notice".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let dead = data.get_u64_le();
                Ok(Message::Reshape {
                    from,
                    dead_rank: (dead != NO_DEAD_RANK).then_some(dead as usize),
                })
            }
            TAG_SPEED_REPORT => {
                if data.remaining() < 24 {
                    return Err(CommError::Codec("truncated speed report".to_string()));
                }
                Ok(Message::SpeedReport {
                    from: data.get_u64_le() as usize,
                    iteration: data.get_u64_le(),
                    step_micros: data.get_u64_le(),
                })
            }
            TAG_SUBMIT_SOLVE => {
                if data.remaining() < 25 {
                    return Err(CommError::Codec("truncated submit header".to_string()));
                }
                let request_id = data.get_u64_le();
                let fingerprint = data.get_u64_le();
                let priority = data.get_u8();
                let queue_deadline_micros = data.get_u64_le();
                let config = get_blob(&mut data, "submit config")?;
                let matrix = get_blob(&mut data, "submit matrix")?;
                let rhs = get_f64s(&mut data, "submit rhs")?;
                Ok(Message::SubmitSolve {
                    request_id,
                    fingerprint,
                    priority,
                    queue_deadline_micros,
                    config,
                    matrix,
                    rhs,
                })
            }
            TAG_SOLVE_RESULT => {
                if data.remaining() < 32 {
                    return Err(CommError::Codec("truncated result header".to_string()));
                }
                let request_id = data.get_u64_le();
                let iterations = data.get_u64_le();
                let coalesced = data.get_u64_le();
                let queue_micros = data.get_u64_le();
                let x = get_f64s(&mut data, "result solution")?;
                Ok(Message::SolveResult {
                    request_id,
                    iterations,
                    coalesced,
                    queue_micros,
                    x,
                })
            }
            TAG_REJECT => {
                if data.remaining() < 17 {
                    return Err(CommError::Codec("truncated reject header".to_string()));
                }
                let request_id = data.get_u64_le();
                let code = RejectCode::from_u8(data.get_u8())?;
                let retry_after_micros = data.get_u64_le();
                let raw = get_blob(&mut data, "reject detail")?;
                let detail = String::from_utf8(raw)
                    .map_err(|_| CommError::Codec("reject detail is not UTF-8".to_string()))?;
                Ok(Message::Reject {
                    request_id,
                    code,
                    retry_after_micros,
                    detail,
                })
            }
            TAG_STATS_QUERY => Ok(Message::StatsQuery),
            TAG_SERVER_STATS => {
                if data.remaining() < 8 * 11 + 8 * 3 {
                    return Err(CommError::Codec("truncated server stats".to_string()));
                }
                Ok(Message::ServerStats {
                    shard: data.get_u64_le(),
                    completed: data.get_u64_le(),
                    rejected: data.get_u64_le(),
                    coalesced: data.get_u64_le(),
                    batches: data.get_u64_le(),
                    cache_evictions: data.get_u64_le(),
                    single_flight_waits: data.get_u64_le(),
                    single_flight_wait_micros: data.get_u64_le(),
                    sparse_fastpath_hits: data.get_u64_le(),
                    dense_fallbacks: data.get_u64_le(),
                    mean_reach_ppm: data.get_u64_le(),
                    queue_depths: [data.get_u64_le(), data.get_u64_le(), data.get_u64_le()],
                })
            }
            other => Err(CommError::Codec(format!("unknown message tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_round_trip() {
        let msg = Message::Solution {
            from: 3,
            iteration: 42,
            offset: 1000,
            values: vec![1.5, -2.25, 0.0, 1e-9],
        };
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.sender(), Some(3));
    }

    #[test]
    fn solution_batch_round_trip() {
        let msg = Message::SolutionBatch {
            from: 2,
            iteration: 11,
            offset: 64,
            columns: vec![vec![1.0, 2.0, 3.0], vec![-4.5, 0.0, 1e-12]],
        };
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.sender(), Some(2));

        // Empty batch is legal and round-trips too.
        let empty = Message::SolutionBatch {
            from: 0,
            iteration: 1,
            offset: 0,
            columns: Vec::new(),
        };
        assert_eq!(Message::decode(empty.encode()).unwrap(), empty);

        // Truncated batch payload is rejected.
        let full = msg.encode();
        let cut = full.slice(0..full.len() - 8);
        assert!(matches!(Message::decode(cut), Err(CommError::Codec(_))));
    }

    #[test]
    fn vote_and_control_round_trip() {
        for msg in [
            Message::ConvergenceVote {
                from: 1,
                iteration: 7,
                converged: true,
            },
            Message::GlobalConverged { iteration: 9 },
            Message::Halt,
            Message::Heartbeat { from: 5 },
            Message::Reshape {
                from: 2,
                dead_rank: Some(3),
            },
            Message::Reshape {
                from: 0,
                dead_rank: None,
            },
            Message::SpeedReport {
                from: 4,
                iteration: 120,
                step_micros: 1_500,
            },
            Message::VoteAggregate {
                from: 6,
                iteration: 33,
                converged: true,
                count: 128,
            },
            Message::VoteAggregate {
                from: 1,
                iteration: 0,
                converged: false,
                count: 1,
            },
            Message::StabilitySummary {
                from: 9,
                iteration: 77,
                stable: 4,
            },
        ] {
            let decoded = Message::decode(msg.encode()).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(msg.encode().len(), msg.encoded_len());
        }
        assert_eq!(Message::Halt.sender(), None);
        assert_eq!(
            Message::VoteAggregate {
                from: 6,
                iteration: 1,
                converged: true,
                count: 2,
            }
            .sender(),
            Some(6)
        );
        assert_eq!(
            Message::StabilitySummary {
                from: 9,
                iteration: 1,
                stable: 0,
            }
            .sender(),
            Some(9)
        );
    }

    #[test]
    fn truncated_convergence_frames_are_rejected() {
        for msg in [
            Message::VoteAggregate {
                from: 3,
                iteration: 12,
                converged: true,
                count: 64,
            },
            Message::StabilitySummary {
                from: 5,
                iteration: 40,
                stable: 7,
            },
        ] {
            let encoded = msg.encode();
            for cut in 1..encoded.len() {
                assert!(
                    matches!(
                        Message::decode(encoded.slice(0..cut)),
                        Err(CommError::Codec(_))
                    ),
                    "{msg:?} cut at {cut} should fail"
                );
            }
        }
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let msg = Message::Solution {
            from: 0,
            iteration: 1,
            offset: 0,
            values: vec![1.0, 2.0],
        };
        let encoded = msg.encode();
        let truncated = encoded.slice(0..encoded.len() - 4);
        assert!(matches!(
            Message::decode(truncated),
            Err(CommError::Codec(_))
        ));
        assert!(matches!(
            Message::decode(Bytes::new()),
            Err(CommError::Codec(_))
        ));
        assert!(matches!(
            Message::decode(Bytes::from_static(&[99])),
            Err(CommError::Codec(_))
        ));
    }

    #[test]
    fn corrupted_length_fields_do_not_overflow() {
        // Regression: a corrupted header announcing u64::MAX values used to
        // overflow the `8 * len` size check in debug builds.
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(TAG_SOLUTION);
        buf.put_u64_le(0); // from
        buf.put_u64_le(1); // iteration
        buf.put_u64_le(0); // offset
        buf.put_u64_le(u64::MAX); // absurd length
        assert!(matches!(
            Message::decode(buf.freeze()),
            Err(CommError::Codec(_))
        ));

        let mut batch = BytesMut::with_capacity(64);
        batch.put_u8(TAG_SOLUTION_BATCH);
        batch.put_u64_le(0);
        batch.put_u64_le(1);
        batch.put_u64_le(0);
        batch.put_u64_le(1); // one column
        batch.put_u64_le(u64::MAX); // absurd column length
        assert!(matches!(
            Message::decode(batch.freeze()),
            Err(CommError::Codec(_))
        ));
    }

    #[test]
    fn encoded_len_tracks_payload_size() {
        let small = Message::Solution {
            from: 0,
            iteration: 0,
            offset: 0,
            values: vec![0.0; 10],
        };
        let large = Message::Solution {
            from: 0,
            iteration: 0,
            offset: 0,
            values: vec![0.0; 1000],
        };
        assert_eq!(large.encoded_len() - small.encoded_len(), 8 * 990);
    }

    fn sample_serve_messages() -> Vec<Message> {
        vec![
            Message::SubmitSolve {
                request_id: 7,
                fingerprint: 0xDEAD_BEEF,
                priority: 1,
                queue_deadline_micros: 250_000,
                config: vec![1, 2, 3, 4],
                matrix: vec![9; 33],
                rhs: vec![1.0, -0.5, 1e-12],
            },
            Message::SubmitSolve {
                request_id: 8,
                fingerprint: 1,
                priority: 0,
                queue_deadline_micros: 0,
                config: Vec::new(),
                matrix: Vec::new(),
                rhs: Vec::new(),
            },
            Message::SolveResult {
                request_id: 7,
                iterations: 41,
                coalesced: 6,
                queue_micros: 1_234,
                x: vec![0.25, 0.5, -3.0],
            },
            Message::Reject {
                request_id: 9,
                code: RejectCode::QueueFull,
                retry_after_micros: 50_000,
                detail: "high lane at its admission limit".to_string(),
            },
            Message::Reject {
                request_id: 10,
                code: RejectCode::Invalid,
                retry_after_micros: 0,
                detail: String::new(),
            },
            Message::StatsQuery,
            Message::ServerStats {
                shard: 2,
                completed: 100,
                rejected: 3,
                coalesced: 48,
                batches: 9,
                cache_evictions: 1,
                single_flight_waits: 5,
                single_flight_wait_micros: 42_000,
                sparse_fastpath_hits: 250,
                dense_fallbacks: 12,
                mean_reach_ppm: 31_250,
                queue_depths: [1, 4, 0],
            },
        ]
    }

    #[test]
    fn serve_messages_round_trip() {
        for msg in sample_serve_messages() {
            let encoded = msg.encode();
            assert_eq!(encoded.len(), msg.encoded_len(), "{msg:?}");
            assert_eq!(Message::decode(encoded).unwrap(), msg);
            assert_eq!(msg.sender(), None, "serve frames carry no mesh rank");
        }
    }

    #[test]
    fn serve_messages_reject_every_truncation() {
        for msg in sample_serve_messages() {
            let encoded = msg.encode();
            for cut in 1..encoded.len() {
                assert!(
                    matches!(
                        Message::decode(encoded.slice(0..cut)),
                        Err(CommError::Codec(_))
                    ),
                    "{msg:?} cut at {cut} should fail"
                );
            }
        }
    }

    #[test]
    fn corrupted_serve_lengths_do_not_allocate() {
        // A submit whose config length claims u64::MAX must fail cleanly.
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(TAG_SUBMIT_SOLVE);
        buf.put_u64_le(1); // request_id
        buf.put_u64_le(2); // fingerprint
        buf.put_u8(0); // priority
        buf.put_u64_le(0); // deadline
        buf.put_u64_le(u64::MAX); // absurd config length
        assert!(matches!(
            Message::decode(buf.freeze()),
            Err(CommError::Codec(_))
        ));

        let mut result = BytesMut::with_capacity(64);
        result.put_u8(TAG_SOLVE_RESULT);
        result.put_u64_le(1);
        result.put_u64_le(2);
        result.put_u64_le(3);
        result.put_u64_le(4);
        result.put_u64_le(u64::MAX); // absurd solution length
        assert!(matches!(
            Message::decode(result.freeze()),
            Err(CommError::Codec(_))
        ));
    }

    #[test]
    fn unknown_reject_codes_are_codec_errors() {
        let msg = Message::Reject {
            request_id: 1,
            code: RejectCode::ShuttingDown,
            retry_after_micros: 0,
            detail: "x".to_string(),
        };
        let mut raw = msg.encode().as_ref().to_vec();
        raw[9] = 99; // the code byte follows tag + request_id
        assert!(matches!(
            Message::decode(Bytes::from(raw)),
            Err(CommError::Codec(_))
        ));
        assert!(RejectCode::QueueFull.is_retryable());
        assert!(!RejectCode::Invalid.is_retryable());
    }

    #[test]
    fn truncated_reshape_and_speed_report_are_rejected() {
        for msg in [
            Message::Reshape {
                from: 1,
                dead_rank: Some(2),
            },
            Message::SpeedReport {
                from: 1,
                iteration: 9,
                step_micros: 77,
            },
        ] {
            let encoded = msg.encode();
            for cut in 1..encoded.len() {
                assert!(matches!(
                    Message::decode(encoded.slice(0..cut)),
                    Err(CommError::Codec(_))
                ));
            }
        }
    }
}
