//! Wire messages exchanged by the multisplitting processors.
//!
//! The dominant traffic is the per-iteration exchange of solution slices
//! (`XSub` sent to every processor that depends on it, step 3 of
//! Algorithm 1).  Convergence votes and the final halt notification complete
//! the protocol.  Messages carry a compact binary encoding so that the
//! transport layer can account exact byte counts against the grid bandwidth
//! model.

use crate::CommError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A message exchanged between two multisplitting processors.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A slice of the solution vector: the sender's `XSub` (or the portion a
    /// dependent processor needs), tagged with the sender's iteration count.
    Solution {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter when the slice was produced.
        iteration: u64,
        /// Global index of the first entry of `values`.
        offset: usize,
        /// The solution values.
        values: Vec<f64>,
    },
    /// A batch of solution slices produced by a multi-RHS solve: one slice
    /// per right-hand side of the batch, all sharing the sender, iteration
    /// stamp and offset.  Batching the columns into one message keeps the
    /// per-iteration message count of Algorithm 1 unchanged when a prepared
    /// system serves many right-hand sides at once.
    SolutionBatch {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter when the slices were produced.
        iteration: u64,
        /// Global index of the first entry of every column.
        offset: usize,
        /// One solution slice per right-hand side, all the same length.
        columns: Vec<Vec<f64>>,
    },
    /// A local convergence vote used by the centralized detection scheme.
    ConvergenceVote {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter.
        iteration: u64,
        /// Whether the sender is locally converged.
        converged: bool,
    },
    /// Global convergence decision broadcast by the coordinator.
    GlobalConverged {
        /// Iteration at which global convergence was detected.
        iteration: u64,
    },
    /// Ask the receiver to stop (used to shut down asynchronous receivers).
    Halt,
    /// Liveness probe sent by a rank blocked in a lockstep wait.  Carries no
    /// payload: the *send itself* is the detector — a probe to a dead peer
    /// surfaces [`crate::CommError::Disconnected`] at the sender, which is
    /// how the runtime's heartbeat failure policy notices a rank death
    /// without waiting out the full peer timeout.  Receivers ignore it.
    Heartbeat {
        /// Sender rank.
        from: usize,
    },
    /// Announcement that the job must be re-partitioned.  Broadcast by the
    /// rank that detected a peer death (under `FailurePolicy::Redistribute`)
    /// or by the coordinator when observed iteration speeds have drifted past
    /// the rebalance threshold.  Every receiver abandons the current
    /// iteration loop and reports a reshape outcome so the launcher can
    /// re-derive band ownership and relaunch from the latest checkpoints.
    Reshape {
        /// Sender rank (the detector / coordinator).
        from: usize,
        /// The dead rank that triggered the reshape, or `u64::MAX` encoded
        /// as `None` when the reshape is a speed-drift rebalance.
        dead_rank: Option<usize>,
    },
    /// Periodic per-rank speed report sent to the coordinator (rank 0) so it
    /// can detect when the relative iteration speeds have drifted from the
    /// splitting the job was partitioned with (online rebalancing hook).
    SpeedReport {
        /// Sender rank.
        from: usize,
        /// Sender's outer-iteration counter at report time.
        iteration: u64,
        /// Smoothed wall time of one outer iteration, in microseconds.
        step_micros: u64,
    },
}

const TAG_SOLUTION: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_GLOBAL: u8 = 3;
const TAG_HALT: u8 = 4;
const TAG_SOLUTION_BATCH: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;
const TAG_RESHAPE: u8 = 7;
const TAG_SPEED_REPORT: u8 = 8;

/// `dead_rank` sentinel for a speed-drift reshape (no dead rank).
const NO_DEAD_RANK: u64 = u64::MAX;

impl Message {
    /// The rank that produced the message, when it carries one.
    pub fn sender(&self) -> Option<usize> {
        match self {
            Message::Solution { from, .. }
            | Message::SolutionBatch { from, .. }
            | Message::ConvergenceVote { from, .. }
            | Message::Heartbeat { from }
            | Message::Reshape { from, .. }
            | Message::SpeedReport { from, .. } => Some(*from),
            _ => None,
        }
    }

    /// Size of the encoded message in bytes — the number charged against the
    /// link bandwidth by the grid model.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::Solution { values, .. } => 1 + 8 + 8 + 8 + 8 + 8 * values.len(),
            Message::SolutionBatch { columns, .. } => {
                let payload: usize = columns.iter().map(|c| 8 + 8 * c.len()).sum();
                1 + 8 + 8 + 8 + 8 + payload
            }
            Message::ConvergenceVote { .. } => 1 + 8 + 8 + 1,
            Message::GlobalConverged { .. } => 1 + 8,
            Message::Halt => 1,
            Message::Heartbeat { .. } => 1 + 8,
            Message::Reshape { .. } => 1 + 8 + 8,
            Message::SpeedReport { .. } => 1 + 8 + 8 + 8,
        }
    }

    /// Encodes the message into a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        match self {
            Message::Solution {
                from,
                iteration,
                offset,
                values,
            } => {
                buf.put_u8(TAG_SOLUTION);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u64_le(*offset as u64);
                buf.put_u64_le(values.len() as u64);
                for v in values {
                    buf.put_f64_le(*v);
                }
            }
            Message::SolutionBatch {
                from,
                iteration,
                offset,
                columns,
            } => {
                buf.put_u8(TAG_SOLUTION_BATCH);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u64_le(*offset as u64);
                buf.put_u64_le(columns.len() as u64);
                for col in columns {
                    buf.put_u64_le(col.len() as u64);
                    for v in col {
                        buf.put_f64_le(*v);
                    }
                }
            }
            Message::ConvergenceVote {
                from,
                iteration,
                converged,
            } => {
                buf.put_u8(TAG_VOTE);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u8(u8::from(*converged));
            }
            Message::GlobalConverged { iteration } => {
                buf.put_u8(TAG_GLOBAL);
                buf.put_u64_le(*iteration);
            }
            Message::Halt => {
                buf.put_u8(TAG_HALT);
            }
            Message::Heartbeat { from } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u64_le(*from as u64);
            }
            Message::Reshape { from, dead_rank } => {
                buf.put_u8(TAG_RESHAPE);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(dead_rank.map_or(NO_DEAD_RANK, |r| r as u64));
            }
            Message::SpeedReport {
                from,
                iteration,
                step_micros,
            } => {
                buf.put_u8(TAG_SPEED_REPORT);
                buf.put_u64_le(*from as u64);
                buf.put_u64_le(*iteration);
                buf.put_u64_le(*step_micros);
            }
        }
        buf.freeze()
    }

    /// Decodes a message produced by [`Message::encode`].
    pub fn decode(mut data: Bytes) -> Result<Self, CommError> {
        if data.is_empty() {
            return Err(CommError::Codec("empty buffer".to_string()));
        }
        let tag = data.get_u8();
        match tag {
            TAG_SOLUTION => {
                if data.remaining() < 32 {
                    return Err(CommError::Codec("truncated solution header".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let offset = data.get_u64_le() as usize;
                let len = data.get_u64_le() as usize;
                // `remaining / 8` (not `8 * len`) so a corrupted length
                // cannot overflow the comparison.
                if data.remaining() / 8 < len {
                    return Err(CommError::Codec(format!(
                        "truncated solution payload: expected {len} values"
                    )));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(data.get_f64_le());
                }
                Ok(Message::Solution {
                    from,
                    iteration,
                    offset,
                    values,
                })
            }
            TAG_SOLUTION_BATCH => {
                if data.remaining() < 32 {
                    return Err(CommError::Codec("truncated batch header".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let offset = data.get_u64_le() as usize;
                let ncols = data.get_u64_le() as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    if data.remaining() < 8 {
                        return Err(CommError::Codec("truncated batch column".to_string()));
                    }
                    let len = data.get_u64_le() as usize;
                    if data.remaining() / 8 < len {
                        return Err(CommError::Codec(format!(
                            "truncated batch column payload: expected {len} values"
                        )));
                    }
                    let mut col = Vec::with_capacity(len);
                    for _ in 0..len {
                        col.push(data.get_f64_le());
                    }
                    columns.push(col);
                }
                Ok(Message::SolutionBatch {
                    from,
                    iteration,
                    offset,
                    columns,
                })
            }
            TAG_VOTE => {
                if data.remaining() < 17 {
                    return Err(CommError::Codec("truncated vote".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let iteration = data.get_u64_le();
                let converged = data.get_u8() != 0;
                Ok(Message::ConvergenceVote {
                    from,
                    iteration,
                    converged,
                })
            }
            TAG_GLOBAL => {
                if data.remaining() < 8 {
                    return Err(CommError::Codec("truncated global notice".to_string()));
                }
                Ok(Message::GlobalConverged {
                    iteration: data.get_u64_le(),
                })
            }
            TAG_HALT => Ok(Message::Halt),
            TAG_HEARTBEAT => {
                if data.remaining() < 8 {
                    return Err(CommError::Codec("truncated heartbeat".to_string()));
                }
                Ok(Message::Heartbeat {
                    from: data.get_u64_le() as usize,
                })
            }
            TAG_RESHAPE => {
                if data.remaining() < 16 {
                    return Err(CommError::Codec("truncated reshape notice".to_string()));
                }
                let from = data.get_u64_le() as usize;
                let dead = data.get_u64_le();
                Ok(Message::Reshape {
                    from,
                    dead_rank: (dead != NO_DEAD_RANK).then_some(dead as usize),
                })
            }
            TAG_SPEED_REPORT => {
                if data.remaining() < 24 {
                    return Err(CommError::Codec("truncated speed report".to_string()));
                }
                Ok(Message::SpeedReport {
                    from: data.get_u64_le() as usize,
                    iteration: data.get_u64_le(),
                    step_micros: data.get_u64_le(),
                })
            }
            other => Err(CommError::Codec(format!("unknown message tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_round_trip() {
        let msg = Message::Solution {
            from: 3,
            iteration: 42,
            offset: 1000,
            values: vec![1.5, -2.25, 0.0, 1e-9],
        };
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.sender(), Some(3));
    }

    #[test]
    fn solution_batch_round_trip() {
        let msg = Message::SolutionBatch {
            from: 2,
            iteration: 11,
            offset: 64,
            columns: vec![vec![1.0, 2.0, 3.0], vec![-4.5, 0.0, 1e-12]],
        };
        let encoded = msg.encode();
        assert_eq!(encoded.len(), msg.encoded_len());
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.sender(), Some(2));

        // Empty batch is legal and round-trips too.
        let empty = Message::SolutionBatch {
            from: 0,
            iteration: 1,
            offset: 0,
            columns: Vec::new(),
        };
        assert_eq!(Message::decode(empty.encode()).unwrap(), empty);

        // Truncated batch payload is rejected.
        let full = msg.encode();
        let cut = full.slice(0..full.len() - 8);
        assert!(matches!(Message::decode(cut), Err(CommError::Codec(_))));
    }

    #[test]
    fn vote_and_control_round_trip() {
        for msg in [
            Message::ConvergenceVote {
                from: 1,
                iteration: 7,
                converged: true,
            },
            Message::GlobalConverged { iteration: 9 },
            Message::Halt,
            Message::Heartbeat { from: 5 },
            Message::Reshape {
                from: 2,
                dead_rank: Some(3),
            },
            Message::Reshape {
                from: 0,
                dead_rank: None,
            },
            Message::SpeedReport {
                from: 4,
                iteration: 120,
                step_micros: 1_500,
            },
        ] {
            let decoded = Message::decode(msg.encode()).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(msg.encode().len(), msg.encoded_len());
        }
        assert_eq!(Message::Halt.sender(), None);
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let msg = Message::Solution {
            from: 0,
            iteration: 1,
            offset: 0,
            values: vec![1.0, 2.0],
        };
        let encoded = msg.encode();
        let truncated = encoded.slice(0..encoded.len() - 4);
        assert!(matches!(
            Message::decode(truncated),
            Err(CommError::Codec(_))
        ));
        assert!(matches!(
            Message::decode(Bytes::new()),
            Err(CommError::Codec(_))
        ));
        assert!(matches!(
            Message::decode(Bytes::from_static(&[99])),
            Err(CommError::Codec(_))
        ));
    }

    #[test]
    fn corrupted_length_fields_do_not_overflow() {
        // Regression: a corrupted header announcing u64::MAX values used to
        // overflow the `8 * len` size check in debug builds.
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(TAG_SOLUTION);
        buf.put_u64_le(0); // from
        buf.put_u64_le(1); // iteration
        buf.put_u64_le(0); // offset
        buf.put_u64_le(u64::MAX); // absurd length
        assert!(matches!(
            Message::decode(buf.freeze()),
            Err(CommError::Codec(_))
        ));

        let mut batch = BytesMut::with_capacity(64);
        batch.put_u8(TAG_SOLUTION_BATCH);
        batch.put_u64_le(0);
        batch.put_u64_le(1);
        batch.put_u64_le(0);
        batch.put_u64_le(1); // one column
        batch.put_u64_le(u64::MAX); // absurd column length
        assert!(matches!(
            Message::decode(batch.freeze()),
            Err(CommError::Codec(_))
        ));
    }

    #[test]
    fn encoded_len_tracks_payload_size() {
        let small = Message::Solution {
            from: 0,
            iteration: 0,
            offset: 0,
            values: vec![0.0; 10],
        };
        let large = Message::Solution {
            from: 0,
            iteration: 0,
            offset: 0,
            values: vec![0.0; 1000],
        };
        assert_eq!(large.encoded_len() - small.encoded_len(), 8 * 990);
    }

    #[test]
    fn truncated_reshape_and_speed_report_are_rejected() {
        for msg in [
            Message::Reshape {
                from: 1,
                dead_rank: Some(2),
            },
            Message::SpeedReport {
                from: 1,
                iteration: 9,
                step_micros: 77,
            },
        ] {
            let encoded = msg.encode();
            for cut in 1..encoded.len() {
                assert!(matches!(
                    Message::decode(encoded.slice(0..cut)),
                    Err(CommError::Codec(_))
                ));
            }
        }
    }
}
