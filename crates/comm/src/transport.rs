//! Message transports: the in-process channel transport and a
//! delay-modelling wrapper.
//!
//! Every multisplitting "processor" is a thread; an [`InProcTransport`] gives
//! each rank an unbounded inbox fed by crossbeam channels.  The
//! [`DelayedTransport`] wrapper accounts every message against a
//! [`msplit_grid::Grid`] link model — and can optionally *realize* a scaled
//! fraction of the modelled delay with a real sleep, which is how the tests
//! exercise the asynchronous driver's tolerance to slow links without waiting
//! for actual WAN round-trips.

use crate::message::Message;
use crate::CommError;
use crossbeam_channel::{unbounded, Receiver, Sender};
use msplit_grid::Grid;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A message transport connecting `num_ranks` endpoints.
pub trait Transport: Send + Sync {
    /// Number of ranks connected by this transport.
    fn num_ranks(&self) -> usize;

    /// Sends a message from `from` to `to`.
    fn send(&self, from: usize, to: usize, msg: Message) -> Result<(), CommError>;

    /// Blocking receive on `rank`'s inbox.
    fn recv(&self, rank: usize) -> Result<Message, CommError>;

    /// Non-blocking receive on `rank`'s inbox.
    fn try_recv(&self, rank: usize) -> Result<Option<Message>, CommError>;

    /// Blocking receive with a timeout.
    fn recv_timeout(&self, rank: usize, timeout: Duration) -> Result<Message, CommError>;
}

/// Per-link traffic statistics (messages and bytes), indexed by
/// `(from, to)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkStats {
    /// Number of messages sent per (from, to) pair.
    pub messages: std::collections::BTreeMap<(usize, usize), usize>,
    /// Number of payload bytes sent per (from, to) pair.
    pub bytes: std::collections::BTreeMap<(usize, usize), usize>,
}

impl LinkStats {
    /// Total number of messages.
    pub fn total_messages(&self) -> usize {
        self.messages.values().sum()
    }

    /// Total number of bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes.values().sum()
    }

    /// Bytes exchanged between different sites of the given grid (the traffic
    /// that crosses the slow inter-site link).
    pub fn inter_site_bytes(&self, grid: &Grid) -> usize {
        self.bytes
            .iter()
            .filter(|(&(from, to), _)| grid.site_of(from).ok() != grid.site_of(to).ok())
            .map(|(_, &b)| b)
            .sum()
    }

    pub(crate) fn record(&mut self, from: usize, to: usize, bytes: usize) {
        *self.messages.entry((from, to)).or_default() += 1;
        *self.bytes.entry((from, to)).or_default() += bytes;
    }
}

/// Poll granularity at which blocked in-process receives re-check whether
/// their rank has been closed (see [`InProcTransport::close_rank`]).
const CLOSED_RANK_POLL: Duration = Duration::from_millis(50);

/// In-process transport: one unbounded channel per rank.
///
/// # Endpoint lifetime
///
/// The transport owns **both** halves of every rank's channel, so as long as
/// the `Arc` is alive the channel layer can never observe a disconnect on its
/// own — a worker thread exiting does not drop its receiver.  Rank death is
/// therefore modelled explicitly with [`InProcTransport::close_rank`]: sends
/// to (and receives on) a closed rank return [`CommError::Disconnected`]
/// instead of queueing into (or blocking on) a mailbox nobody will ever
/// drain.  This mirrors what the TCP transport reports when a peer process
/// dies, keeping error handling transport-generic.
pub struct InProcTransport {
    senders: Vec<Sender<Message>>,
    receivers: Vec<Receiver<Message>>,
    /// Ranks explicitly marked dead via [`InProcTransport::close_rank`].
    closed: Vec<std::sync::atomic::AtomicBool>,
    stats: Mutex<LinkStats>,
}

impl InProcTransport {
    /// Creates a transport connecting `num_ranks` endpoints.
    pub fn new(num_ranks: usize) -> Arc<Self> {
        let mut senders = Vec::with_capacity(num_ranks);
        let mut receivers = Vec::with_capacity(num_ranks);
        for _ in 0..num_ranks {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        Arc::new(InProcTransport {
            senders,
            receivers,
            closed: (0..num_ranks)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
            stats: Mutex::new(LinkStats::default()),
        })
    }

    /// A snapshot of the per-link traffic statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats.lock().clone()
    }

    /// Marks `rank` as dead: subsequent sends to it and receives on it
    /// return [`CommError::Disconnected`].  Queued messages are dropped.
    pub fn close_rank(&self, rank: usize) -> Result<(), CommError> {
        self.check_rank(rank)?;
        self.closed[rank].store(true, std::sync::atomic::Ordering::SeqCst);
        while self.receivers[rank].try_recv().is_ok() {}
        Ok(())
    }

    fn check_rank(&self, rank: usize) -> Result<(), CommError> {
        if rank >= self.senders.len() {
            return Err(CommError::UnknownRank {
                rank,
                total: self.senders.len(),
            });
        }
        Ok(())
    }

    fn check_open(&self, rank: usize) -> Result<(), CommError> {
        self.check_rank(rank)?;
        if self.closed[rank].load(std::sync::atomic::Ordering::SeqCst) {
            return Err(CommError::Disconnected { rank });
        }
        Ok(())
    }
}

impl Transport for InProcTransport {
    fn num_ranks(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, from: usize, to: usize, msg: Message) -> Result<(), CommError> {
        self.check_rank(from)?;
        self.check_open(to)?;
        self.stats.lock().record(from, to, msg.encoded_len());
        self.senders[to]
            .send(msg)
            .map_err(|_| CommError::Disconnected { rank: to })
    }

    fn recv(&self, rank: usize) -> Result<Message, CommError> {
        // Poll in slices so a concurrent `close_rank` wakes this thread up:
        // the transport holds both channel halves, so the channel itself can
        // never signal the disconnect.
        loop {
            self.check_open(rank)?;
            match self.receivers[rank].recv_timeout(CLOSED_RANK_POLL) {
                Ok(msg) => return Ok(msg),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank })
                }
            }
        }
    }

    fn try_recv(&self, rank: usize) -> Result<Option<Message>, CommError> {
        self.check_open(rank)?;
        match self.receivers[rank].try_recv() {
            Ok(msg) => Ok(Some(msg)),
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => {
                Err(CommError::Disconnected { rank })
            }
        }
    }

    fn recv_timeout(&self, rank: usize, timeout: Duration) -> Result<Message, CommError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            self.check_open(rank)?;
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout { rank });
            }
            match self.receivers[rank].recv_timeout(CLOSED_RANK_POLL.min(deadline - now)) {
                Ok(msg) => return Ok(msg),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank })
                }
            }
        }
    }
}

/// A transport wrapper that models (and optionally realizes) link delays
/// according to a grid description.
pub struct DelayedTransport {
    inner: Arc<InProcTransport>,
    grid: Grid,
    /// Fraction of the modelled delay actually slept before delivery.  `0.0`
    /// records the delay without slowing the run; `1.0` reproduces it in real
    /// time; the async-robustness tests use a small scale (e.g. `1e-3`).
    time_scale: f64,
    /// Accumulated modelled delay per destination rank, in modelled seconds.
    modelled_delay: Mutex<Vec<f64>>,
}

impl DelayedTransport {
    /// Wraps an in-process transport with the link model of `grid`.
    ///
    /// # Panics
    /// Panics if the grid has fewer machines than the transport has ranks.
    pub fn new(inner: Arc<InProcTransport>, grid: Grid, time_scale: f64) -> Arc<Self> {
        assert!(
            grid.num_machines() >= inner.num_ranks(),
            "grid has {} machines but the transport has {} ranks",
            grid.num_machines(),
            inner.num_ranks()
        );
        let ranks = inner.num_ranks();
        Arc::new(DelayedTransport {
            inner,
            grid,
            time_scale,
            modelled_delay: Mutex::new(vec![0.0; ranks]),
        })
    }

    /// Total modelled network delay charged to each rank so far (seconds of
    /// modelled time, regardless of `time_scale`).
    pub fn modelled_delays(&self) -> Vec<f64> {
        self.modelled_delay.lock().clone()
    }

    /// Traffic statistics of the underlying transport.
    pub fn stats(&self) -> LinkStats {
        self.inner.stats()
    }

    /// The grid backing the delay model.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
}

impl Transport for DelayedTransport {
    fn num_ranks(&self) -> usize {
        self.inner.num_ranks()
    }

    fn send(&self, from: usize, to: usize, msg: Message) -> Result<(), CommError> {
        let bytes = msg.encoded_len();
        let delay =
            self.grid
                .transfer_seconds(from, to, bytes)
                .map_err(|_| CommError::UnknownRank {
                    rank: from.max(to),
                    total: self.num_ranks(),
                })?;
        self.modelled_delay.lock()[to] += delay;
        if self.time_scale > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(delay * self.time_scale));
        }
        self.inner.send(from, to, msg)
    }

    fn recv(&self, rank: usize) -> Result<Message, CommError> {
        self.inner.recv(rank)
    }

    fn try_recv(&self, rank: usize) -> Result<Option<Message>, CommError> {
        self.inner.try_recv(rank)
    }

    fn recv_timeout(&self, rank: usize, timeout: Duration) -> Result<Message, CommError> {
        self.inner.recv_timeout(rank, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msplit_grid::cluster::{cluster1, cluster3};

    fn solution_msg(from: usize, n: usize) -> Message {
        Message::Solution {
            from,
            iteration: 1,
            offset: 0,
            values: vec![1.0; n],
        }
    }

    #[test]
    fn send_and_receive_in_order() {
        let t = InProcTransport::new(2);
        t.send(0, 1, solution_msg(0, 3)).unwrap();
        t.send(0, 1, Message::Halt).unwrap();
        assert_eq!(t.recv(1).unwrap(), solution_msg(0, 3));
        assert_eq!(t.recv(1).unwrap(), Message::Halt);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let t = InProcTransport::new(2);
        assert_eq!(t.try_recv(0).unwrap(), None);
        t.send(1, 0, Message::Halt).unwrap();
        assert_eq!(t.try_recv(0).unwrap(), Some(Message::Halt));
    }

    #[test]
    fn recv_timeout_times_out() {
        let t = InProcTransport::new(1);
        let err = t.recv_timeout(0, Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, CommError::Timeout { rank: 0 }));
    }

    #[test]
    fn unknown_ranks_rejected() {
        let t = InProcTransport::new(2);
        assert!(t.send(0, 5, Message::Halt).is_err());
        assert!(t.send(7, 0, Message::Halt).is_err());
        assert!(t.recv(9).is_err());
        assert!(t.try_recv(9).is_err());
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let t = InProcTransport::new(3);
        t.send(0, 1, solution_msg(0, 10)).unwrap();
        t.send(0, 1, solution_msg(0, 10)).unwrap();
        t.send(2, 0, Message::Halt).unwrap();
        let stats = t.stats();
        assert_eq!(stats.total_messages(), 3);
        assert_eq!(stats.messages[&(0, 1)], 2);
        assert!(stats.total_bytes() > 2 * 80);
    }

    #[test]
    fn cross_thread_delivery() {
        let t = InProcTransport::new(2);
        let t2 = Arc::clone(&t);
        let handle = std::thread::spawn(move || t2.recv(1).unwrap());
        std::thread::sleep(Duration::from_millis(5));
        t.send(0, 1, solution_msg(0, 4)).unwrap();
        assert_eq!(handle.join().unwrap(), solution_msg(0, 4));
    }

    #[test]
    fn delayed_transport_records_modelled_delay() {
        let inner = InProcTransport::new(10);
        let delayed = DelayedTransport::new(inner, cluster3(), 0.0);
        // intra-site (0 -> 1) vs inter-site (0 -> 8)
        delayed.send(0, 1, solution_msg(0, 1000)).unwrap();
        delayed.send(0, 8, solution_msg(0, 1000)).unwrap();
        let delays = delayed.modelled_delays();
        assert!(delays[8] > delays[1]);
        assert!(delays[1] > 0.0);
        assert_eq!(delayed.recv(1).unwrap(), solution_msg(0, 1000));
        assert_eq!(delayed.grid().name, "cluster3");
    }

    #[test]
    fn delayed_transport_inter_site_stats() {
        let inner = InProcTransport::new(10);
        let grid = cluster3();
        let delayed = DelayedTransport::new(inner, grid.clone(), 0.0);
        delayed.send(0, 8, solution_msg(0, 100)).unwrap();
        delayed.send(0, 1, solution_msg(0, 100)).unwrap();
        let stats = delayed.stats();
        let inter = stats.inter_site_bytes(&grid);
        assert!(inter > 0);
        assert!(inter < stats.total_bytes());
    }

    #[test]
    #[should_panic]
    fn delayed_transport_requires_enough_machines() {
        let inner = InProcTransport::new(25);
        let _ = DelayedTransport::new(inner, cluster1(), 0.0);
    }

    #[test]
    fn send_to_closed_rank_is_disconnected_not_a_panic() {
        // Regression: the transport owns both channel halves, so a dead rank
        // used to accept sends forever (its mailbox just grew); callers that
        // assumed channel-layer disconnection would panic on unwrap paths.
        // close_rank models the death explicitly.
        let t = InProcTransport::new(3);
        t.send(0, 2, Message::Halt).unwrap();
        t.close_rank(2).unwrap();
        assert_eq!(
            t.send(0, 2, Message::Halt),
            Err(CommError::Disconnected { rank: 2 })
        );
        assert_eq!(
            t.recv_timeout(2, Duration::from_millis(1)),
            Err(CommError::Disconnected { rank: 2 })
        );
        assert_eq!(t.try_recv(2), Err(CommError::Disconnected { rank: 2 }));
        // Other ranks keep working.
        t.send(0, 1, Message::Halt).unwrap();
        assert_eq!(t.recv(1).unwrap(), Message::Halt);
        assert!(t.close_rank(9).is_err());
    }

    #[test]
    fn close_rank_wakes_a_blocked_recv() {
        let t = InProcTransport::new(2);
        let t2 = Arc::clone(&t);
        let blocked = std::thread::spawn(move || t2.recv(1));
        std::thread::sleep(Duration::from_millis(20));
        t.close_rank(1).unwrap();
        // The blocked receiver must observe the close instead of hanging.
        assert_eq!(
            blocked.join().unwrap(),
            Err(CommError::Disconnected { rank: 1 })
        );
    }

    #[test]
    fn drop_order_audit_sender_outlives_worker_exit() {
        // A worker thread that exits (normally or by panic) does not drop
        // the transport's channel endpoints: sends to that rank stay Ok
        // until the rank is closed explicitly, and never panic.
        let t = InProcTransport::new(2);
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || {
            let _ = t2.recv(1); // worker exits immediately after one recv
        });
        t.send(0, 1, Message::Halt).unwrap();
        // The worker is gone; sending again must still be a clean Ok (the
        // transport holds the receiver), not a panic in the channel layer.
        t.send(0, 1, Message::Halt).unwrap();
        t.close_rank(1).unwrap();
        assert!(matches!(
            t.send(0, 1, Message::Halt),
            Err(CommError::Disconnected { rank: 1 })
        ));
    }
}
