//! Per-processor execution timelines.
//!
//! The performance replay records what every modelled processor was doing and
//! when.  The resulting timeline supports the analyses reported in the
//! paper's discussion sections: how much of the run is factorization versus
//! iteration versus communication, how unbalanced the processors are, and how
//! much time is lost to synchronization.

#[cfg(msplit_serde)]
use serde::{Deserialize, Serialize};

/// What a processor was doing during a trace interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub enum TraceKind {
    /// One-off factorization of the local diagonal block.
    Factorize,
    /// Per-iteration local computation (RHS update + triangular solves).
    Compute,
    /// Sending dependency data to a neighbour.
    Send,
    /// Waiting for dependency data or for a synchronization barrier.
    Wait,
    /// Convergence-detection protocol work.
    Detection,
}

/// One interval of a processor's timeline.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct TraceEvent {
    /// Processor rank.
    pub rank: usize,
    /// Activity performed.
    pub kind: TraceKind,
    /// Start of the interval (virtual seconds).
    pub start: f64,
    /// End of the interval (virtual seconds).
    pub end: f64,
}

impl TraceEvent {
    /// Duration of the interval.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A collection of trace events for a whole run.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct Timeline {
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline { events: Vec::new() }
    }

    /// Records one interval.
    pub fn record(&mut self, rank: usize, kind: TraceKind, start: f64, end: f64) {
        debug_assert!(end >= start, "trace interval must not be negative");
        self.events.push(TraceEvent {
            rank,
            kind,
            start,
            end,
        });
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// End time of the last interval (the modelled makespan).
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Total time spent by `rank` in activities of the given kind.
    pub fn time_in(&self, rank: usize, kind: TraceKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.rank == rank && e.kind == kind)
            .map(TraceEvent::duration)
            .sum()
    }

    /// Total time spent by all processors in activities of the given kind.
    pub fn total_time_in(&self, kind: TraceKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(TraceEvent::duration)
            .sum()
    }

    /// Busy time (everything except [`TraceKind::Wait`]) of a processor.
    pub fn busy_time(&self, rank: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.rank == rank && e.kind != TraceKind::Wait)
            .map(TraceEvent::duration)
            .sum()
    }

    /// Parallel efficiency proxy: average busy time divided by the makespan.
    pub fn efficiency(&self, num_ranks: usize) -> f64 {
        if num_ranks == 0 || self.makespan() == 0.0 {
            return 0.0;
        }
        let avg_busy: f64 =
            (0..num_ranks).map(|r| self.busy_time(r)).sum::<f64>() / num_ranks as f64;
        avg_busy / self.makespan()
    }

    /// Merges another timeline into this one.
    pub fn merge(&mut self, other: &Timeline) {
        self.events.extend_from_slice(&other.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.record(0, TraceKind::Factorize, 0.0, 2.0);
        t.record(0, TraceKind::Compute, 2.0, 3.0);
        t.record(0, TraceKind::Wait, 3.0, 4.0);
        t.record(1, TraceKind::Factorize, 0.0, 1.0);
        t.record(1, TraceKind::Compute, 1.0, 4.0);
        t
    }

    #[test]
    fn makespan_and_per_kind_accounting() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.makespan(), 4.0);
        assert_eq!(t.time_in(0, TraceKind::Factorize), 2.0);
        assert_eq!(t.time_in(1, TraceKind::Compute), 3.0);
        assert_eq!(t.total_time_in(TraceKind::Factorize), 3.0);
    }

    #[test]
    fn busy_time_excludes_waits() {
        let t = sample();
        assert_eq!(t.busy_time(0), 3.0);
        assert_eq!(t.busy_time(1), 4.0);
    }

    #[test]
    fn efficiency_between_zero_and_one() {
        let t = sample();
        let e = t.efficiency(2);
        assert!(e > 0.0 && e <= 1.0);
        assert!((e - (3.0 + 4.0) / 2.0 / 4.0).abs() < 1e-12);
        assert_eq!(Timeline::new().efficiency(2), 0.0);
    }

    #[test]
    fn merge_concatenates_events() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.len(), 10);
    }
}
