//! Grid environment model: machines, clusters, networks, a discrete-event
//! engine and the cost model used to replay solver executions on the paper's
//! three cluster configurations.
//!
//! The paper evaluates its algorithms on physical testbeds that we cannot
//! reproduce here:
//!
//! * **cluster1** — 20 homogeneous Pentium IV 2.6 GHz machines, 256 MB each,
//!   on a 100 Mb/s LAN,
//! * **cluster2** — 8 heterogeneous machines (P-IV 1.7–2.6 GHz, 512 MB) on a
//!   100 Mb/s LAN,
//! * **cluster3** — 10 heterogeneous machines spread over two sites (7 + 3)
//!   with 100 Mb/s LANs joined by a 20 Mb/s Internet link, optionally loaded
//!   with "perturbing communications" (Table 4).
//!
//! This crate describes those environments as data ([`cluster`]), models link
//! and CPU costs ([`network`], [`perf`]), provides a discrete-event scheduler
//! ([`event`]) used by the performance replay in `msplit-core`, and records
//! per-processor timelines ([`trace`]).
//!
//! # Place in the runtime architecture
//!
//! In the engine/policy/adapter architecture documented at the top of
//! `msplit-core` (`crates/core/src/lib.rs`), this crate is the environment
//! model around the runtime: link delays from [`network`] are replayed onto
//! live transports, [`cluster`] speed profiles size the bands
//! heterogeneously, and [`perf::speeds_from_step_times`] converts observed
//! per-rank step times back into splitting weights when the online
//! rebalancing hook of `docs/fault-tolerance.md` triggers a reshape.

pub mod cluster;
pub mod event;
pub mod machine;
pub mod network;
pub mod perf;
pub mod trace;

pub use cluster::{Grid, Site};
pub use machine::Machine;
pub use network::{LinkSpec, NetworkModel, PerturbationModel};
pub use perf::CostModel;
pub use trace::{Timeline, TraceEvent, TraceKind};

/// Errors produced by the grid model.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A processor rank is out of range for the grid.
    UnknownRank { rank: usize, total: usize },
    /// A configuration is structurally invalid (empty site, zero bandwidth…).
    InvalidConfig(String),
    /// A memory requirement exceeds a machine's capacity.
    OutOfMemory {
        rank: usize,
        required_bytes: usize,
        available_bytes: usize,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::UnknownRank { rank, total } => {
                write!(f, "processor rank {rank} out of range (grid has {total})")
            }
            GridError::InvalidConfig(msg) => write!(f, "invalid grid configuration: {msg}"),
            GridError::OutOfMemory {
                rank,
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "not enough memory on rank {rank}: required {required_bytes} bytes, available {available_bytes}"
            ),
        }
    }
}

impl std::error::Error for GridError {}
