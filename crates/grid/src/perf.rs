//! Cost model mapping solver work onto grid resources.
//!
//! The benchmark harness runs the numerical algorithms at laptop scale and
//! replays their *work profile* (flops factored, flops per iteration, message
//! sizes, iteration counts) on the modelled clusters to produce the
//! wall-clock estimates reported in the tables.  This module provides the
//! elementary conversions: flops → seconds on a given machine, bytes →
//! seconds on a given route, and the memory feasibility check behind the
//! `nem` entries of Table 3.

use crate::cluster::Grid;
use crate::GridError;
#[cfg(msplit_serde)]
use serde::{Deserialize, Serialize};

/// Cost model for a given grid.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct CostModel {
    /// The grid on which the work is replayed.
    pub grid: Grid,
    /// Fixed per-message software overhead (marshalling, MPI/Corba stack),
    /// in seconds.  The paper's Corba-based asynchronous version has a
    /// slightly higher per-message cost, which the drivers can reflect by
    /// scaling this value.
    pub per_message_overhead_s: f64,
    /// Fixed per-iteration overhead of the convergence detection protocol, in
    /// seconds per processor (grows with the processor count inside the
    /// drivers, matching the paper's observation that detection becomes
    /// expensive at 16–20 processors).
    pub convergence_detection_overhead_s: f64,
}

impl CostModel {
    /// Creates a cost model with default software overheads.
    pub fn new(grid: Grid) -> Self {
        CostModel {
            grid,
            per_message_overhead_s: 50e-6,
            convergence_detection_overhead_s: 200e-6,
        }
    }

    /// Seconds of computation for `flops` floating-point operations on the
    /// machine at `rank`.
    pub fn compute_seconds(&self, rank: usize, flops: u64) -> Result<f64, GridError> {
        Ok(self.grid.machine(rank)?.seconds_for_flops(flops))
    }

    /// Seconds to deliver one message of `bytes` from `from` to `to`
    /// (including the fixed software overhead).
    pub fn message_seconds(&self, from: usize, to: usize, bytes: usize) -> Result<f64, GridError> {
        Ok(self.per_message_overhead_s + self.grid.transfer_seconds(from, to, bytes)?)
    }

    /// Checks that a working set of `bytes` fits on the machine at `rank`.
    pub fn check_memory(&self, rank: usize, bytes: usize) -> Result<(), GridError> {
        let machine = self.grid.machine(rank)?;
        if machine.fits(bytes) {
            Ok(())
        } else {
            Err(GridError::OutOfMemory {
                rank,
                required_bytes: bytes,
                available_bytes: machine.usable_memory_bytes(),
            })
        }
    }

    /// Number of machines available.
    pub fn num_machines(&self) -> usize {
        self.grid.num_machines()
    }

    /// The slowest machine's computation time for `flops` — the critical path
    /// of a perfectly synchronized step in which every processor executes
    /// `flops` operations.
    pub fn slowest_compute_seconds(&self, flops: u64) -> f64 {
        (0..self.num_machines())
            .map(|r| {
                self.grid
                    .machine(r)
                    .expect("rank in range")
                    .seconds_for_flops(flops)
            })
            .fold(0.0, f64::max)
    }
}

/// Work profile of one processor's share of a solver execution, produced by
/// the numerical run and consumed by the replay.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct WorkProfile {
    /// Flops spent in the one-off factorization.
    pub factor_flops: u64,
    /// Flops spent per outer iteration (local RHS update + triangular solves).
    pub per_iteration_flops: u64,
    /// Bytes of solution data sent to neighbours per outer iteration.
    pub per_iteration_send_bytes: usize,
    /// Number of messages sent per outer iteration.
    pub per_iteration_messages: usize,
    /// Peak working-set size in bytes (matrix blocks + factors + vectors).
    pub memory_bytes: usize,
}

impl WorkProfile {
    /// Merges another profile into this one (used when a processor owns
    /// several bands, Remark 2 of the paper).
    pub fn merge(&mut self, other: &WorkProfile) {
        self.factor_flops += other.factor_flops;
        self.per_iteration_flops += other.per_iteration_flops;
        self.per_iteration_send_bytes += other.per_iteration_send_bytes;
        self.per_iteration_messages += other.per_iteration_messages;
        self.memory_bytes += other.memory_bytes;
    }
}

/// Relative speeds inferred from *observed* per-iteration step times — the
/// online analogue of [`Grid::relative_speeds`], which prices machines from
/// the static cluster model.
///
/// A machine's speed is proportional to the reciprocal of its step time;
/// the result is normalized so the slowest machine is `1.0`, matching the
/// convention heterogeneity-aware band sizing expects.  Non-positive or
/// non-finite step times (a rank that never completed an iteration) are
/// treated as the slowest observed time, so they receive the smallest band
/// rather than poisoning the apportionment.
pub fn speeds_from_step_times(step_seconds: &[f64]) -> Vec<f64> {
    let worst = step_seconds
        .iter()
        .copied()
        .filter(|t| t.is_finite() && *t > 0.0)
        .fold(0.0f64, f64::max);
    if worst == 0.0 {
        return vec![1.0; step_seconds.len()];
    }
    step_seconds
        .iter()
        .map(|&t| {
            let t = if t.is_finite() && t > 0.0 { t } else { worst };
            worst / t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{cluster1, cluster3};

    #[test]
    fn compute_time_scales_with_machine_speed() {
        let model = CostModel::new(cluster3());
        // rank 0 is a 1.7 GHz machine, rank 5 a 2.6 GHz machine.
        let slow = model.compute_seconds(0, 1_000_000_000).unwrap();
        let fast = model.compute_seconds(5, 1_000_000_000).unwrap();
        assert!(slow > fast);
        assert!(model.slowest_compute_seconds(1_000_000_000) >= slow);
    }

    #[test]
    fn message_time_includes_overhead_and_route() {
        let model = CostModel::new(cluster3());
        let intra = model.message_seconds(0, 1, 80_000).unwrap();
        let inter = model.message_seconds(0, 8, 80_000).unwrap();
        assert!(intra > model.per_message_overhead_s);
        assert!(inter > intra);
    }

    #[test]
    fn memory_check_produces_out_of_memory() {
        let model = CostModel::new(cluster1());
        assert!(model.check_memory(0, 1024).is_ok());
        let err = model.check_memory(0, 1 << 30).unwrap_err();
        assert!(matches!(err, GridError::OutOfMemory { rank: 0, .. }));
    }

    #[test]
    fn unknown_rank_is_reported() {
        let model = CostModel::new(cluster1());
        assert!(model.compute_seconds(99, 1).is_err());
        assert!(model.message_seconds(0, 99, 1).is_err());
    }

    #[test]
    fn observed_speeds_invert_step_times() {
        // 1 s, 0.5 s and 0.25 s steps → speeds 1 : 2 : 4.
        let speeds = speeds_from_step_times(&[1.0, 0.5, 0.25]);
        assert_eq!(speeds, vec![1.0, 2.0, 4.0]);
        // Degenerate observations fall back to the slowest machine.
        let speeds = speeds_from_step_times(&[2.0, 0.0, f64::NAN, 1.0]);
        assert_eq!(speeds, vec![1.0, 1.0, 1.0, 2.0]);
        // No usable observation at all → uniform.
        assert_eq!(speeds_from_step_times(&[0.0, 0.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn work_profile_merge_accumulates() {
        let mut a = WorkProfile {
            factor_flops: 100,
            per_iteration_flops: 10,
            per_iteration_send_bytes: 1000,
            per_iteration_messages: 2,
            memory_bytes: 4096,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.factor_flops, 200);
        assert_eq!(a.per_iteration_messages, 4);
        assert_eq!(a.memory_bytes, 8192);
    }
}
