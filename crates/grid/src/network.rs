//! Network links, routing and the perturbing-traffic model.

#[cfg(msplit_serde)]
use serde::{Deserialize, Serialize};

/// A point-to-point (or shared-medium) link characterized by bandwidth and
/// latency.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct LinkSpec {
    /// Nominal bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// The paper's 100 Mb/s switched Ethernet LAN.
    pub fn lan_100mb() -> Self {
        LinkSpec {
            bandwidth_mbps: 100.0,
            latency_s: 100e-6,
        }
    }

    /// The paper's 20 Mb/s inter-site Internet link.
    pub fn wan_20mb() -> Self {
        LinkSpec {
            bandwidth_mbps: 20.0,
            latency_s: 10e-3,
        }
    }

    /// Seconds needed to move `bytes` across the link (store-and-forward
    /// model: latency plus serialization time).
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / (self.bandwidth_mbps * 1e6)
    }

    /// [`LinkSpec::transfer_seconds`] as a `Duration`, the form a socket
    /// transport sleeps before a send to realize the modelled link cost.
    pub fn transfer_duration(&self, bytes: usize) -> std::time::Duration {
        std::time::Duration::from_secs_f64(self.transfer_seconds(bytes).max(0.0))
    }

    /// A copy of this link with its bandwidth scaled by `factor` (0 < factor ≤ 1).
    pub fn with_bandwidth_factor(&self, factor: f64) -> LinkSpec {
        LinkSpec {
            bandwidth_mbps: self.bandwidth_mbps * factor.max(f64::MIN_POSITIVE),
            latency_s: self.latency_s,
        }
    }
}

/// Model of the "perturbing communications" of Table 4: background flows that
/// share the inter-site link with the solver traffic.
///
/// The paper observes that the impact is *not* linear in the number of flows
/// ("computations and perturbing tasks interact and slow down each other"),
/// which a fair-share model reproduces: with `k` background flows the solver
/// keeps a `1 / (1 + contention * k)` share of the bandwidth, and every flow
/// also adds queueing latency.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct PerturbationModel {
    /// Number of perturbing background flows on the inter-site link.
    pub flows: usize,
    /// How aggressively each flow competes for bandwidth (1.0 = perfect fair
    /// share with an equal-rate flow; the paper's measurements are matched
    /// reasonably by ~0.6, i.e. the perturbing ftp-like transfers do not
    /// saturate their share).
    pub contention: f64,
    /// Additional queueing latency contributed by each flow, in seconds.
    pub added_latency_per_flow_s: f64,
}

impl PerturbationModel {
    /// No background traffic.
    pub fn none() -> Self {
        PerturbationModel {
            flows: 0,
            contention: 0.6,
            added_latency_per_flow_s: 2e-3,
        }
    }

    /// `flows` background flows with the default contention parameters.
    pub fn with_flows(flows: usize) -> Self {
        PerturbationModel {
            flows,
            ..Self::none()
        }
    }

    /// Applies the perturbation to a link, returning the effective link seen
    /// by the solver's messages.
    pub fn apply(&self, link: &LinkSpec) -> LinkSpec {
        let share = 1.0 / (1.0 + self.contention * self.flows as f64);
        LinkSpec {
            bandwidth_mbps: link.bandwidth_mbps * share,
            latency_s: link.latency_s + self.added_latency_per_flow_s * self.flows as f64,
        }
    }
}

/// Network model of a whole grid: an intra-site link specification, an
/// inter-site link specification, and the perturbation applied to the
/// inter-site link.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct NetworkModel {
    /// Link used between two machines of the same site.
    pub intra_site: LinkSpec,
    /// Link used between machines of different sites.
    pub inter_site: LinkSpec,
    /// Background traffic on the inter-site link.
    pub perturbation: PerturbationModel,
}

impl NetworkModel {
    /// A single-site LAN (no inter-site traffic ever happens, but the field
    /// is populated with the same LAN for completeness).
    pub fn single_site_lan() -> Self {
        NetworkModel {
            intra_site: LinkSpec::lan_100mb(),
            inter_site: LinkSpec::lan_100mb(),
            perturbation: PerturbationModel::none(),
        }
    }

    /// The paper's two-site configuration: 100 Mb LANs joined by a 20 Mb WAN.
    pub fn two_site_wan() -> Self {
        NetworkModel {
            intra_site: LinkSpec::lan_100mb(),
            inter_site: LinkSpec::wan_20mb(),
            perturbation: PerturbationModel::none(),
        }
    }

    /// Returns this model with `flows` perturbing background flows.
    pub fn with_perturbing_flows(mut self, flows: usize) -> Self {
        self.perturbation.flows = flows;
        self
    }

    /// The effective link between two machines given their site indices.
    pub fn link_between(&self, site_a: usize, site_b: usize) -> LinkSpec {
        if site_a == site_b {
            self.intra_site
        } else {
            self.perturbation.apply(&self.inter_site)
        }
    }

    /// Seconds to transfer `bytes` between machines on the given sites.
    pub fn transfer_seconds(&self, site_a: usize, site_b: usize, bytes: usize) -> f64 {
        self.link_between(site_a, site_b).transfer_seconds(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_transfers_are_fast_and_linear_in_size() {
        let lan = LinkSpec::lan_100mb();
        let t1 = lan.transfer_seconds(125_000); // 1 Mb
        let t2 = lan.transfer_seconds(250_000);
        assert!(t1 > 0.0);
        assert!(t2 > t1);
        // 1 Mb over 100 Mb/s is 10 ms plus latency
        assert!((t1 - (0.01 + lan.latency_s)).abs() < 1e-9);
    }

    #[test]
    fn wan_is_slower_than_lan() {
        let bytes = 1_000_000;
        assert!(
            LinkSpec::wan_20mb().transfer_seconds(bytes)
                > LinkSpec::lan_100mb().transfer_seconds(bytes)
        );
    }

    #[test]
    fn perturbation_reduces_effective_bandwidth_nonlinearly() {
        let wan = LinkSpec::wan_20mb();
        let t0 = PerturbationModel::with_flows(0).apply(&wan);
        let t1 = PerturbationModel::with_flows(1).apply(&wan);
        let t5 = PerturbationModel::with_flows(5).apply(&wan);
        let t10 = PerturbationModel::with_flows(10).apply(&wan);
        assert_eq!(t0.bandwidth_mbps, wan.bandwidth_mbps);
        assert!(t1.bandwidth_mbps < t0.bandwidth_mbps);
        assert!(t5.bandwidth_mbps < t1.bandwidth_mbps);
        assert!(t10.bandwidth_mbps < t5.bandwidth_mbps);
        // The marginal impact of each extra flow decreases (fair-share curve).
        let d1 = t0.bandwidth_mbps - t1.bandwidth_mbps;
        let d10 = t5.bandwidth_mbps - t10.bandwidth_mbps;
        assert!(d10 < 5.0 * d1);
        // Latency increases with the number of flows.
        assert!(t10.latency_s > t0.latency_s);
    }

    #[test]
    fn network_model_routes_by_site() {
        let net = NetworkModel::two_site_wan().with_perturbing_flows(2);
        let intra = net.link_between(0, 0);
        let inter = net.link_between(0, 1);
        assert_eq!(intra.bandwidth_mbps, 100.0);
        assert!(inter.bandwidth_mbps < 20.0);
        assert!(net.transfer_seconds(0, 1, 10_000) > net.transfer_seconds(0, 0, 10_000));
    }

    #[test]
    fn bandwidth_factor_never_reaches_zero() {
        let l = LinkSpec::lan_100mb().with_bandwidth_factor(0.0);
        assert!(l.bandwidth_mbps > 0.0);
    }
}
