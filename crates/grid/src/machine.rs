//! Individual machine (processor) description.

#[cfg(msplit_serde)]
use serde::{Deserialize, Serialize};

/// A single machine of the grid.
///
/// The paper's testbeds are Pentium IV machines between 1.7 and 2.6 GHz with
/// 256 or 512 MB of memory.  We characterize a machine by a sustained
/// floating-point rate for sparse kernels rather than by its clock rate: a
/// Pentium IV sustains roughly 0.1–0.2 GFLOP/s on irregular sparse
/// factorization workloads, and the rate is assumed proportional to the clock
/// (which is what the paper's heterogeneity discussion relies on).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct Machine {
    /// Human-readable name.
    pub name: String,
    /// Clock rate in GHz (for reporting).
    pub clock_ghz: f64,
    /// Sustained rate for sparse numerical kernels, in GFLOP/s.
    pub sparse_gflops: f64,
    /// Physical memory, in megabytes.
    pub memory_mb: usize,
}

/// Fraction of peak a Pentium-IV-class machine sustains on sparse kernels,
/// relative to one flop per cycle.
const SPARSE_EFFICIENCY: f64 = 0.06;

/// Fraction of the physical memory usable by the solver (the OS, the MPI or
/// Corba runtime and the buffers take the rest).  The paper's cage11 run
/// fails on a 1 GB machine, i.e. the usable fraction is well below 1.
const USABLE_MEMORY_FRACTION: f64 = 0.75;

impl Machine {
    /// Builds a Pentium-IV-class machine from its clock rate and memory.
    pub fn pentium4(name: impl Into<String>, clock_ghz: f64, memory_mb: usize) -> Self {
        Machine {
            name: name.into(),
            clock_ghz,
            sparse_gflops: clock_ghz * SPARSE_EFFICIENCY,
            memory_mb,
        }
    }

    /// Seconds needed to execute `flops` floating point operations of sparse
    /// numerical work on this machine.
    pub fn seconds_for_flops(&self, flops: u64) -> f64 {
        flops as f64 / (self.sparse_gflops * 1e9)
    }

    /// Usable memory in bytes.
    pub fn usable_memory_bytes(&self) -> usize {
        (self.memory_mb as f64 * 1024.0 * 1024.0 * USABLE_MEMORY_FRACTION) as usize
    }

    /// Whether a working set of `bytes` fits in the usable memory.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.usable_memory_bytes()
    }

    /// Relative speed of this machine compared to another (used for
    /// heterogeneity-aware load balancing: faster machines get larger bands).
    pub fn relative_speed(&self, other: &Machine) -> f64 {
        self.sparse_gflops / other.sparse_gflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium4_scaling() {
        let fast = Machine::pentium4("fast", 2.6, 256);
        let slow = Machine::pentium4("slow", 1.7, 512);
        assert!(fast.sparse_gflops > slow.sparse_gflops);
        assert!((fast.relative_speed(&slow) - 2.6 / 1.7).abs() < 1e-12);
    }

    #[test]
    fn seconds_for_flops_is_linear() {
        let m = Machine::pentium4("m", 2.0, 256);
        let t1 = m.seconds_for_flops(1_000_000);
        let t2 = m.seconds_for_flops(2_000_000);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        assert!(t1 > 0.0);
    }

    #[test]
    fn memory_fit_checks() {
        let m = Machine::pentium4("m", 2.6, 256);
        assert!(m.fits(10 * 1024 * 1024));
        assert!(!m.fits(300 * 1024 * 1024));
        // usable memory is strictly less than physical
        assert!(m.usable_memory_bytes() < 256 * 1024 * 1024);
    }

    // Requires a real `serde`/`serde_json` dependency, so it only compiles
    // under the custom `--cfg msplit_serde` flag (see vendor/README.md).
    #[cfg(msplit_serde)]
    #[test]
    fn serde_round_trip() {
        let m = Machine::pentium4("node-3", 2.2, 512);
        let json = serde_json::to_string(&m).unwrap();
        let back: Machine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
