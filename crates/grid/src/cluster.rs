//! Sites, grids and the paper's three cluster configurations.

use crate::machine::Machine;
use crate::network::NetworkModel;
use crate::GridError;
#[cfg(msplit_serde)]
use serde::{Deserialize, Serialize};

/// A site: a set of machines behind one LAN.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct Site {
    /// Site name.
    pub name: String,
    /// Machines hosted at this site.
    pub machines: Vec<Machine>,
}

impl Site {
    /// Creates a site from a name and machines.
    pub fn new(name: impl Into<String>, machines: Vec<Machine>) -> Self {
        Site {
            name: name.into(),
            machines,
        }
    }
}

/// A grid: one or more sites plus a network model.
///
/// Machines are addressed by a global *rank* assigned site by site in order,
/// mirroring how MPI ranks were laid out in the paper's experiments.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(msplit_serde, derive(Serialize, Deserialize))]
pub struct Grid {
    /// Grid name (used in experiment reports).
    pub name: String,
    /// The sites of the grid.
    pub sites: Vec<Site>,
    /// The network joining machines within and across sites.
    pub network: NetworkModel,
}

impl Grid {
    /// Creates a grid, validating that it has at least one non-empty site.
    pub fn new(
        name: impl Into<String>,
        sites: Vec<Site>,
        network: NetworkModel,
    ) -> Result<Self, GridError> {
        if sites.is_empty() || sites.iter().any(|s| s.machines.is_empty()) {
            return Err(GridError::InvalidConfig(
                "a grid needs at least one site and every site needs at least one machine"
                    .to_string(),
            ));
        }
        Ok(Grid {
            name: name.into(),
            sites,
            network,
        })
    }

    /// Total number of machines (the maximum usable processor count).
    pub fn num_machines(&self) -> usize {
        self.sites.iter().map(|s| s.machines.len()).sum()
    }

    /// The machine behind a global rank.
    pub fn machine(&self, rank: usize) -> Result<&Machine, GridError> {
        let mut r = rank;
        for site in &self.sites {
            if r < site.machines.len() {
                return Ok(&site.machines[r]);
            }
            r -= site.machines.len();
        }
        Err(GridError::UnknownRank {
            rank,
            total: self.num_machines(),
        })
    }

    /// The site index of a global rank.
    pub fn site_of(&self, rank: usize) -> Result<usize, GridError> {
        let mut r = rank;
        for (s, site) in self.sites.iter().enumerate() {
            if r < site.machines.len() {
                return Ok(s);
            }
            r -= site.machines.len();
        }
        Err(GridError::UnknownRank {
            rank,
            total: self.num_machines(),
        })
    }

    /// Seconds to transfer `bytes` from `rank_a` to `rank_b`.
    pub fn transfer_seconds(
        &self,
        rank_a: usize,
        rank_b: usize,
        bytes: usize,
    ) -> Result<f64, GridError> {
        let sa = self.site_of(rank_a)?;
        let sb = self.site_of(rank_b)?;
        Ok(self.network.transfer_seconds(sa, sb, bytes))
    }

    /// Restricts the grid to its first `n` machines (in rank order), keeping
    /// the site structure.  This is how the scalability tables use 2, 3, …,
    /// 20 processors of cluster1.
    pub fn take_machines(&self, n: usize) -> Result<Grid, GridError> {
        if n == 0 || n > self.num_machines() {
            return Err(GridError::InvalidConfig(format!(
                "cannot take {n} machines out of {}",
                self.num_machines()
            )));
        }
        let mut remaining = n;
        let mut sites = Vec::new();
        for site in &self.sites {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(site.machines.len());
            sites.push(Site::new(site.name.clone(), site.machines[..take].to_vec()));
            remaining -= take;
        }
        Grid::new(format!("{}[{}]", self.name, n), sites, self.network.clone())
    }

    /// Returns this grid with `flows` perturbing flows on the inter-site link.
    pub fn with_perturbing_flows(mut self, flows: usize) -> Grid {
        self.network.perturbation.flows = flows;
        self
    }

    /// Relative speeds of all machines, normalized so the slowest is 1.0
    /// (used for heterogeneity-aware band sizing).
    pub fn relative_speeds(&self) -> Vec<f64> {
        let speeds: Vec<f64> = (0..self.num_machines())
            .map(|r| self.machine(r).expect("rank in range").sparse_gflops)
            .collect();
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        speeds.into_iter().map(|s| s / min).collect()
    }
}

/// The paper's **cluster1**: 20 homogeneous Pentium IV 2.6 GHz machines with
/// 256 MB, 100 Mb/s LAN.
pub fn cluster1() -> Grid {
    let machines = (0..20)
        .map(|i| Machine::pentium4(format!("c1-n{i:02}"), 2.6, 256))
        .collect();
    Grid::new(
        "cluster1",
        vec![Site::new("lifc-lan", machines)],
        NetworkModel::single_site_lan(),
    )
    .expect("static configuration is valid")
}

/// The paper's **cluster2**: 8 heterogeneous machines (P-IV 1.7 to 2.6 GHz,
/// 512 MB), 100 Mb/s LAN.
pub fn cluster2() -> Grid {
    let clocks = [1.7, 1.8, 2.0, 2.0, 2.2, 2.4, 2.6, 2.6];
    let machines = clocks
        .iter()
        .enumerate()
        .map(|(i, &ghz)| Machine::pentium4(format!("c2-n{i:02}"), ghz, 512))
        .collect();
    Grid::new(
        "cluster2",
        vec![Site::new("hetero-lan", machines)],
        NetworkModel::single_site_lan(),
    )
    .expect("static configuration is valid")
}

/// The paper's **cluster3**: 10 heterogeneous machines on two sites (7 + 3),
/// 100 Mb/s LANs joined by a 20 Mb/s Internet link.
pub fn cluster3() -> Grid {
    let site_a_clocks = [1.7, 1.8, 2.0, 2.2, 2.4, 2.6, 2.6];
    let site_b_clocks = [1.7, 2.0, 2.6];
    let site_a = Site::new(
        "site-a",
        site_a_clocks
            .iter()
            .enumerate()
            .map(|(i, &ghz)| Machine::pentium4(format!("c3a-n{i:02}"), ghz, 512))
            .collect(),
    );
    let site_b = Site::new(
        "site-b",
        site_b_clocks
            .iter()
            .enumerate()
            .map(|(i, &ghz)| Machine::pentium4(format!("c3b-n{i:02}"), ghz, 512))
            .collect(),
    );
    Grid::new(
        "cluster3",
        vec![site_a, site_b],
        NetworkModel::two_site_wan(),
    )
    .expect("static configuration is valid")
}

/// A generic two-site grid of homogeneous machines: `site_a` machines on one
/// 100 Mb LAN, `site_b` on another, joined by the paper's 20 Mb inter-site
/// link.  This is the shape the distributed TCP runtime maps onto loopback
/// worker meshes of arbitrary size: ranks `0..site_a` sit on site A, the
/// rest on site B, and every A↔B send pays the modelled WAN delay.
pub fn two_site(site_a: usize, site_b: usize) -> Result<Grid, GridError> {
    let mk = |prefix: &str, count: usize| -> Vec<Machine> {
        (0..count)
            .map(|i| Machine::pentium4(format!("{prefix}-n{i:02}"), 2.6, 512))
            .collect()
    };
    Grid::new(
        format!("two_site({site_a}+{site_b})"),
        vec![
            Site::new("site-a", mk("tsa", site_a)),
            Site::new("site-b", mk("tsb", site_b)),
        ],
        NetworkModel::two_site_wan(),
    )
}

/// A single-machine "grid" used to model the sequential baseline runs (the
/// 1-processor column of Table 1 and the failed sequential cage11 run).
pub fn single_machine(memory_mb: usize) -> Grid {
    Grid::new(
        "single",
        vec![Site::new(
            "local",
            vec![Machine::pentium4("seq-n0", 2.6, memory_mb)],
        )],
        NetworkModel::single_site_lan(),
    )
    .expect("static configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_clusters_match_the_paper() {
        let c1 = cluster1();
        assert_eq!(c1.num_machines(), 20);
        assert_eq!(c1.sites.len(), 1);
        // homogeneous
        assert!(c1
            .relative_speeds()
            .iter()
            .all(|&s| (s - 1.0).abs() < 1e-12));

        let c2 = cluster2();
        assert_eq!(c2.num_machines(), 8);
        assert!(c2.relative_speeds().iter().any(|&s| s > 1.0));

        let c3 = cluster3();
        assert_eq!(c3.num_machines(), 10);
        assert_eq!(c3.sites.len(), 2);
        assert_eq!(c3.sites[0].machines.len(), 7);
        assert_eq!(c3.sites[1].machines.len(), 3);
    }

    #[test]
    fn rank_lookup_and_site_mapping() {
        let c3 = cluster3();
        assert_eq!(c3.site_of(0).unwrap(), 0);
        assert_eq!(c3.site_of(6).unwrap(), 0);
        assert_eq!(c3.site_of(7).unwrap(), 1);
        assert_eq!(c3.site_of(9).unwrap(), 1);
        assert!(matches!(
            c3.site_of(10),
            Err(GridError::UnknownRank {
                rank: 10,
                total: 10
            })
        ));
        assert!(c3.machine(9).is_ok());
        assert!(c3.machine(10).is_err());
    }

    #[test]
    fn transfer_cost_depends_on_sites() {
        let c3 = cluster3();
        let intra = c3.transfer_seconds(0, 1, 100_000).unwrap();
        let inter = c3.transfer_seconds(0, 8, 100_000).unwrap();
        assert!(inter > intra);
    }

    #[test]
    fn take_machines_preserves_prefix() {
        let c1 = cluster1();
        let sub = c1.take_machines(6).unwrap();
        assert_eq!(sub.num_machines(), 6);
        assert!(c1.take_machines(0).is_err());
        assert!(c1.take_machines(21).is_err());

        let c3 = cluster3();
        let sub8 = c3.take_machines(8).unwrap();
        assert_eq!(sub8.sites.len(), 2);
        assert_eq!(sub8.sites[0].machines.len(), 7);
        assert_eq!(sub8.sites[1].machines.len(), 1);
    }

    #[test]
    fn perturbing_flows_slow_down_inter_site_links_only() {
        let base = cluster3();
        let perturbed = cluster3().with_perturbing_flows(10);
        let bytes = 500_000;
        assert_eq!(
            base.transfer_seconds(0, 1, bytes).unwrap(),
            perturbed.transfer_seconds(0, 1, bytes).unwrap()
        );
        assert!(
            perturbed.transfer_seconds(0, 8, bytes).unwrap()
                > base.transfer_seconds(0, 8, bytes).unwrap()
        );
    }

    #[test]
    fn empty_configurations_rejected() {
        assert!(Grid::new("bad", vec![], NetworkModel::single_site_lan()).is_err());
        assert!(Grid::new(
            "bad",
            vec![Site::new("empty", vec![])],
            NetworkModel::single_site_lan()
        )
        .is_err());
    }

    #[test]
    fn single_machine_grid() {
        let g = single_machine(1024);
        assert_eq!(g.num_machines(), 1);
        assert_eq!(g.machine(0).unwrap().memory_mb, 1024);
    }

    #[test]
    fn two_site_grid_prices_the_wan_crossing() {
        let g = two_site(2, 2).unwrap();
        assert_eq!(g.num_machines(), 4);
        assert_eq!(g.site_of(1).unwrap(), 0);
        assert_eq!(g.site_of(2).unwrap(), 1);
        let intra = g.transfer_seconds(0, 1, 10_000).unwrap();
        let inter = g.transfer_seconds(1, 2, 10_000).unwrap();
        assert!(inter > intra);
        assert!(two_site(0, 3).is_err());
    }
}
