//! Minimal discrete-event simulation engine.
//!
//! The performance replay in `msplit-core::perf_model` walks a solver
//! execution (factorizations, per-iteration solves, messages) over a virtual
//! clock.  This engine provides the priority queue of timestamped events and
//! per-processor clocks needed for that replay; it is deliberately small —
//! the heavy lifting (what events to schedule) belongs to the caller.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduled<T> {
    /// Virtual time at which the event fires.
    pub time: f64,
    /// Monotonic sequence number breaking ties deterministically (FIFO).
    seq: u64,
    /// The payload.
    pub event: T,
}

impl<T> Eq for Scheduled<T> where T: PartialEq {}

impl<T: PartialEq> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with a virtual clock.
#[derive(Debug)]
pub struct EventQueue<T: PartialEq> {
    heap: BinaryHeap<Scheduled<T>>,
    now: f64,
    next_seq: u64,
}

impl<T: PartialEq> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: PartialEq> EventQueue<T> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            next_seq: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or earlier than the current clock (events in
    /// the past would make the simulation non-causal).
    pub fn schedule_at(&mut self, time: f64, event: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule an event in the past ({time} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules an event `delay` seconds after the current clock.
    pub fn schedule_after(&mut self, delay: f64, event: T) {
        self.schedule_at(self.now + delay.max(0.0), event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// Peeks at the earliest pending event time without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }
}

/// Tracks the busy-until time of a set of processors over virtual time.
///
/// This is the simplest possible resource model: each processor executes one
/// activity at a time; an activity submitted at `earliest_start` begins at
/// `max(earliest_start, busy_until)` and occupies the processor for its
/// duration.
#[derive(Debug, Clone)]
pub struct ProcessorClocks {
    busy_until: Vec<f64>,
}

impl ProcessorClocks {
    /// Creates clocks for `n` processors, all idle at time 0.
    pub fn new(n: usize) -> Self {
        ProcessorClocks {
            busy_until: vec![0.0; n],
        }
    }

    /// Number of processors tracked.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Whether the tracker is empty.
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// Time at which processor `p` becomes idle.
    pub fn busy_until(&self, p: usize) -> f64 {
        self.busy_until[p]
    }

    /// Schedules an activity of `duration` seconds on processor `p` that may
    /// not start before `earliest_start`.  Returns `(start, end)`.
    pub fn run(&mut self, p: usize, earliest_start: f64, duration: f64) -> (f64, f64) {
        let start = self.busy_until[p].max(earliest_start);
        let end = start + duration.max(0.0);
        self.busy_until[p] = end;
        (start, end)
    }

    /// The makespan: the time at which every processor is idle.
    pub fn makespan(&self) -> f64 {
        self.busy_until.iter().cloned().fold(0.0, f64::max)
    }

    /// Advances every processor to at least `time` (a synchronization
    /// barrier: nobody proceeds before the slowest).
    pub fn barrier(&mut self, time: f64) {
        for b in &mut self.busy_until {
            *b = b.max(time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, "first");
        q.schedule_at(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "x");
        q.pop();
        q.schedule_after(2.0, "y");
        assert_eq!(q.peek_time(), Some(7.0));
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "x");
        q.pop();
        q.schedule_at(1.0, "y");
    }

    #[test]
    fn processor_clocks_serialize_activities() {
        let mut clocks = ProcessorClocks::new(2);
        let (s1, e1) = clocks.run(0, 0.0, 2.0);
        assert_eq!((s1, e1), (0.0, 2.0));
        // Submitted at time 1 but the processor is busy until 2.
        let (s2, e2) = clocks.run(0, 1.0, 1.0);
        assert_eq!((s2, e2), (2.0, 3.0));
        // The other processor is still free.
        let (s3, _) = clocks.run(1, 1.0, 1.0);
        assert_eq!(s3, 1.0);
        assert_eq!(clocks.makespan(), 3.0);
    }

    #[test]
    fn barrier_aligns_all_processors() {
        let mut clocks = ProcessorClocks::new(3);
        clocks.run(0, 0.0, 5.0);
        clocks.run(1, 0.0, 1.0);
        clocks.barrier(clocks.makespan());
        for p in 0..3 {
            assert_eq!(clocks.busy_until(p), 5.0);
        }
    }
}
