//! `msplit-server` — one shard of a solve fleet.
//!
//! ```text
//! msplit-server --addr 127.0.0.1:7070 --shard 0 --workers 2
//! ```
//!
//! Prints `LISTENING <addr>` once the socket is bound (launch scripts wait
//! for that line, like they wait for the worker's job files) and serves
//! until killed.  See `docs/serving.md` for fleet layout and
//! `examples/solve_fleet.rs` for an in-process equivalent.

use msplit_serve::{ServeConfig, SolveServer};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    config: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServeConfig::default();
    let mut it = std::env::args().skip(1);
    fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = value(&mut it, "--addr")?,
            "--shard" => {
                config.shard = value(&mut it, "--shard")?
                    .parse()
                    .map_err(|e| format!("bad shard: {e}"))?
            }
            "--workers" => {
                config.engine.workers = value(&mut it, "--workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?
            }
            "--cache" => {
                config.engine.cache_capacity = value(&mut it, "--cache")?
                    .parse()
                    .map_err(|e| format!("bad cache capacity: {e}"))?
            }
            "--window-ms" => {
                let ms: u64 = value(&mut it, "--window-ms")?
                    .parse()
                    .map_err(|e| format!("bad window: {e}"))?;
                config.coalesce_window = Duration::from_millis(ms);
            }
            "--max-batch" => {
                config.max_batch = value(&mut it, "--max-batch")?
                    .parse()
                    .map_err(|e| format!("bad batch cap: {e}"))?
            }
            "--lane-limits" => {
                let raw = value(&mut it, "--lane-limits")?;
                let parts: Vec<usize> = raw
                    .split(',')
                    .map(|p| p.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad lane limits '{raw}': {e}"))?;
                if parts.len() != 3 {
                    return Err(format!(
                        "--lane-limits needs three comma-separated numbers, got '{raw}'"
                    ));
                }
                config.lane_limits = [parts[0], parts[1], parts[2]];
            }
            "--help" | "-h" => {
                println!(
                    "msplit-server: one shard of a multisplitting solve fleet\n\
                     usage: msplit-server [--addr host:port] [--shard N] [--workers N]\n\
                     \x20                    [--cache N] [--window-ms N] [--max-batch N]\n\
                     \x20                    [--lane-limits high,normal,low]\n\
                     Prints 'LISTENING <addr>' once bound; serves until killed.\n\
                     See docs/serving.md."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args { addr, config })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("msplit-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match SolveServer::start(&args.addr, args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("msplit-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.local_addr());
    // Serve until the process is killed; the fleet has no in-band shutdown
    // (operators stop shards with signals, clients ring-retry around them).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
