//! # msplit-serve — the networked multi-tenant solve service
//!
//! The engine crate turned the multisplitting solver into an in-process
//! service (cache, queue, workers).  This crate puts that service on the
//! network and scales it out:
//!
//! * **[`SolveServer`]** — one shard: a TCP listener speaking the
//!   `msplit-comm` frame protocol (serve connections are handshakes with
//!   `world_size == 0`), per-lane admission control over the engine's
//!   3-lane priority queue, and a **cross-request coalescer** that merges
//!   compatible single-RHS requests for the same
//!   [`MatrixKey`](msplit_engine::MatrixKey) into one batched sweep.
//!   Coalescing is bitwise-safe: the batch driver freezes every column at
//!   the iteration its solo run would stop (`msplit_core::runtime::ColumnBoard`),
//!   so merged requests receive exactly the bytes a dedicated solve would
//!   have produced.
//! * **[`ServeClient`]** — routes requests over a consistent-hash ring of
//!   shards by matrix fingerprint, walks the ring on shard death or load
//!   shedding, and speculatively warms the ring successor's cache so a
//!   failover lands on a prepared factorization.
//!
//! Overload never blocks a connection: a full lane or an expired queue
//! deadline produces a typed `Reject` frame with a retry-after hint.  See
//! `docs/serving.md` for the operational picture and
//! `examples/solve_fleet.rs` for a complete three-shard fleet.

pub mod client;
pub mod codec;
pub mod server;

pub use client::{ClientOptions, ServeClient, ServeSolution};
pub use msplit_comm::RejectCode;
pub use server::{ServeConfig, SolveServer};

/// Errors surfaced by the serve layer.
#[derive(Debug)]
pub enum ServeError {
    /// A transport-level failure (connect, frame read/write, handshake).
    Comm(msplit_comm::CommError),
    /// A socket or thread operation failed.
    Io(String),
    /// A malformed or unexpected frame / blob.
    Protocol(String),
    /// The fleet answered with a typed rejection.
    Rejected {
        /// Why the request was rejected.
        code: RejectCode,
        /// Suggested microseconds to wait before retrying (0 = no hint).
        retry_after_micros: u64,
        /// Server-side detail.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Comm(e) => write!(f, "transport error: {e}"),
            ServeError::Io(msg) => write!(f, "io error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Rejected {
                code,
                retry_after_micros,
                detail,
            } => write!(
                f,
                "rejected ({code:?}, retry after {retry_after_micros}us): {detail}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<msplit_comm::CommError> for ServeError {
    fn from(e: msplit_comm::CommError) -> Self {
        ServeError::Comm(e)
    }
}
