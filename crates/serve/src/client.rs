//! Fleet client: fingerprint routing, ring-retry, speculative warming.
//!
//! A [`ServeClient`] holds one multiplexed connection per shard.  Requests
//! route by the matrix fingerprint on a consistent-hash ring, so every
//! client sends a given matrix to the same shard — which is what makes the
//! server-side [`FactorizationCache`](msplit_engine::FactorizationCache)
//! sharding and the cross-request coalescing effective.  When a shard dies
//! or sheds load, the client walks the ring to the next distinct shard and
//! retries; because the routing is a ring (not a modulo), the death of one
//! shard only remaps the fingerprints that shard owned.

use crate::codec;
use crate::ServeError;
use msplit_comm::wire::{read_frame, write_frame, Handshake};
use msplit_comm::{CommError, Message, RejectCode};
use msplit_core::solver::MultisplittingConfig;
use msplit_sparse::fingerprint::Fnv64;
use msplit_sparse::CsrMatrix;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Virtual points each shard contributes to the ring: enough that removing
/// one shard spreads its keys roughly evenly over the survivors.
const RING_REPLICAS: usize = 17;

/// A successful serve response.
#[derive(Debug, Clone)]
pub struct ServeSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Outer iterations the solve took.  For a coalesced response this is
    /// the iteration the request's column froze at — identical to what a
    /// solo solve would report.
    pub iterations: u64,
    /// Requests served by the sweep that produced this answer (1 = solo).
    pub coalesced: u64,
    /// Microseconds spent queued (admission to solve, excluding the solve).
    pub queue_micros: u64,
    /// Index of the shard that answered.
    pub shard: usize,
}

/// Knobs of a [`ServeClient`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Scheduling lane requested for solves (0 = highest priority).
    pub priority: u8,
    /// Queue-deadline budget attached to every request (None = unbounded).
    pub queue_deadline: Option<Duration>,
    /// Budget for dialing one shard.
    pub connect_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            priority: 1,
            queue_deadline: None,
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// One multiplexed connection to a shard: requests are written under a lock
/// and a reader thread routes responses back to waiters by request id, so
/// many threads can have solves in flight on the same socket — which is
/// exactly the traffic shape the server's coalescer merges.
struct NodeConn {
    writer: Mutex<TcpStream>,
    waiters: Arc<Mutex<HashMap<u64, crossbeam_channel::Sender<Message>>>>,
    alive: Arc<AtomicBool>,
    shard: usize,
}

impl NodeConn {
    fn open(addr: &str, timeout: Duration) -> Result<NodeConn, ServeError> {
        let sock_addr: std::net::SocketAddr = addr
            .parse()
            .map_err(|e| ServeError::Io(format!("bad shard address {addr}: {e}")))?;
        let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
            .map_err(|e| ServeError::Io(format!("connect {addr} failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| ServeError::Io(format!("socket setup: {e}")))?;
        // Serve-connection handshake: world_size 0, unpinned (fingerprint 0)
        // so one connection can carry requests for many matrices.
        Handshake {
            rank: 0,
            world_size: 0,
            fingerprint: 0,
        }
        .write_to(&mut stream)
        .map_err(ServeError::Comm)?;
        let echo = Handshake::read_from(&mut stream).map_err(ServeError::Comm)?;
        let shard = echo.rank;

        let waiters: Arc<Mutex<HashMap<u64, crossbeam_channel::Sender<Message>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let alive = Arc::new(AtomicBool::new(true));
        let mut reader = stream
            .try_clone()
            .map_err(|e| ServeError::Io(format!("stream clone failed: {e}")))?;
        {
            let waiters = Arc::clone(&waiters);
            let alive = Arc::clone(&alive);
            std::thread::Builder::new()
                .name(format!("msplit-serve-client-reader-{shard}"))
                .spawn(move || loop {
                    match read_frame(&mut reader) {
                        Ok((_, msg)) => {
                            let request_id = match &msg {
                                Message::SolveResult { request_id, .. }
                                | Message::Reject { request_id, .. } => Some(*request_id),
                                _ => None,
                            };
                            if let Some(id) = request_id {
                                if let Some(tx) = waiters.lock().remove(&id) {
                                    let _ = tx.send(msg);
                                }
                            } else if let Message::ServerStats { .. } = msg {
                                // Stats replies use the reserved id 0 slot.
                                if let Some(tx) = waiters.lock().remove(&0) {
                                    let _ = tx.send(msg);
                                }
                            }
                        }
                        Err(_) => {
                            alive.store(false, Ordering::SeqCst);
                            // Fail every outstanding waiter so ring-retry can
                            // move on instead of hanging.
                            waiters.lock().clear();
                            return;
                        }
                    }
                })
                .map_err(|e| ServeError::Io(format!("spawning reader thread: {e}")))?;
        }
        Ok(NodeConn {
            writer: Mutex::new(stream),
            waiters,
            alive,
            shard,
        })
    }

    /// Sends `msg` and waits for the response routed to `wait_id`.
    fn round_trip(&self, wait_id: u64, msg: &Message) -> Result<Message, ServeError> {
        let (tx, rx) = crossbeam_channel::bounded(1);
        self.waiters.lock().insert(wait_id, tx);
        let send_result = {
            use std::io::Write;
            let mut writer = self.writer.lock();
            write_frame(&mut *writer, 0, msg).and_then(|()| {
                writer
                    .flush()
                    .map_err(|e| CommError::Io(format!("request flush failed: {e}")))
            })
        };
        if let Err(e) = send_result {
            self.waiters.lock().remove(&wait_id);
            self.alive.store(false, Ordering::SeqCst);
            return Err(ServeError::Comm(e));
        }
        match rx.recv() {
            Ok(reply) => Ok(reply),
            // The reader thread dropped the sender: the connection died.
            Err(_) => Err(ServeError::Io(format!(
                "shard {} connection lost mid-request",
                self.shard
            ))),
        }
    }
}

/// A client of a sharded solve fleet.
pub struct ServeClient {
    addrs: Vec<String>,
    /// Sorted (hash, node index) ring points.
    ring: Vec<(u64, usize)>,
    conns: Mutex<HashMap<usize, Arc<NodeConn>>>,
    /// `(node, fingerprint)` pairs whose matrix bytes a shard already holds,
    /// so repeat solves skip the matrix blob.
    sent_matrices: Mutex<HashSet<(usize, u64)>>,
    next_request: AtomicU64,
    options: ClientOptions,
}

fn ring_hash(addr: &str, replica: usize) -> u64 {
    let mut h = Fnv64::new();
    for b in addr.bytes() {
        h.mix(b as u64);
    }
    h.mix(replica as u64);
    h.finish()
}

impl ServeClient {
    /// Builds a client over the given shard addresses (`host:port`).
    pub fn new(addrs: &[String], options: ClientOptions) -> Result<ServeClient, ServeError> {
        if addrs.is_empty() {
            return Err(ServeError::Protocol("no shard addresses given".to_string()));
        }
        let mut ring = Vec::with_capacity(addrs.len() * RING_REPLICAS);
        for (i, addr) in addrs.iter().enumerate() {
            for r in 0..RING_REPLICAS {
                ring.push((ring_hash(addr, r), i));
            }
        }
        ring.sort_unstable();
        Ok(ServeClient {
            addrs: addrs.to_vec(),
            ring,
            conns: Mutex::new(HashMap::new()),
            sent_matrices: Mutex::new(HashSet::new()),
            next_request: AtomicU64::new(1),
            options,
        })
    }

    /// The distinct node indices to try for `fingerprint`, primary first,
    /// then ring successors.
    fn route(&self, fingerprint: u64) -> Vec<usize> {
        let start = self
            .ring
            .iter()
            .position(|&(h, _)| h >= fingerprint)
            .unwrap_or(0);
        let mut order = Vec::with_capacity(self.addrs.len());
        for k in 0..self.ring.len() {
            let (_, node) = self.ring[(start + k) % self.ring.len()];
            if !order.contains(&node) {
                order.push(node);
                if order.len() == self.addrs.len() {
                    break;
                }
            }
        }
        order
    }

    fn connection(&self, node: usize) -> Result<Arc<NodeConn>, ServeError> {
        let mut conns = self.conns.lock();
        if let Some(conn) = conns.get(&node) {
            if conn.alive.load(Ordering::SeqCst) {
                return Ok(Arc::clone(conn));
            }
            conns.remove(&node);
            // The connection died; anything the shard learned may be gone
            // with it (process death), so forget what we sent it.
            self.sent_matrices.lock().retain(|(n, _)| *n != node);
        }
        let conn = Arc::new(NodeConn::open(
            &self.addrs[node],
            self.options.connect_timeout,
        )?);
        conns.insert(node, Arc::clone(&conn));
        Ok(conn)
    }

    fn drop_connection(&self, node: usize) {
        self.conns.lock().remove(&node);
        self.sent_matrices.lock().retain(|(n, _)| *n != node);
    }

    fn submit_message(
        &self,
        request_id: u64,
        a: &CsrMatrix,
        fingerprint: u64,
        config: &MultisplittingConfig,
        rhs: &[f64],
        include_matrix: bool,
    ) -> Message {
        Message::SubmitSolve {
            request_id,
            fingerprint,
            priority: self.options.priority,
            queue_deadline_micros: self
                .options
                .queue_deadline
                .map_or(0, |d| d.as_micros() as u64),
            config: codec::encode_config(config),
            matrix: if include_matrix {
                codec::encode_matrix(a)
            } else {
                Vec::new()
            },
            rhs: rhs.to_vec(),
        }
    }

    /// One request/response attempt against `node`; `rhs` empty = warm.
    fn attempt(
        &self,
        node: usize,
        a: &CsrMatrix,
        fingerprint: u64,
        config: &MultisplittingConfig,
        rhs: &[f64],
    ) -> Result<ServeSolution, ServeError> {
        let conn = self.connection(node)?;
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let already_sent = self.sent_matrices.lock().contains(&(node, fingerprint));
        let msg = self.submit_message(request_id, a, fingerprint, config, rhs, !already_sent);
        let mut reply = conn.round_trip(request_id, &msg)?;
        if let Message::Reject {
            code: RejectCode::Invalid,
            ref detail,
            ..
        } = reply
        {
            // The shard restarted and lost the matrix: resend it once.
            if already_sent && detail.contains("unknown matrix") {
                self.sent_matrices.lock().remove(&(node, fingerprint));
                let retry_id = self.next_request.fetch_add(1, Ordering::Relaxed);
                let msg = self.submit_message(retry_id, a, fingerprint, config, rhs, true);
                reply = conn.round_trip(retry_id, &msg)?;
            }
        }
        match reply {
            Message::SolveResult {
                iterations,
                coalesced,
                queue_micros,
                x,
                ..
            } => {
                self.sent_matrices.lock().insert((node, fingerprint));
                Ok(ServeSolution {
                    x,
                    iterations,
                    coalesced,
                    queue_micros,
                    shard: conn.shard,
                })
            }
            Message::Reject {
                code,
                retry_after_micros,
                detail,
                ..
            } => Err(ServeError::Rejected {
                code,
                retry_after_micros,
                detail,
            }),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to a solve: {other:?}"
            ))),
        }
    }

    /// Solves `a x = rhs`, routing by fingerprint and walking the ring on
    /// shard death or load shedding.  The answer is bitwise identical to a
    /// direct [`PreparedSystem::solve`](msplit_core::PreparedSystem) with the
    /// same configuration, whether or not the fleet coalesced it.
    pub fn solve(
        &self,
        a: &CsrMatrix,
        config: &MultisplittingConfig,
        rhs: &[f64],
    ) -> Result<ServeSolution, ServeError> {
        let fingerprint = a.fingerprint();
        let mut last_err = None;
        for node in self.route(fingerprint) {
            match self.attempt(node, a, fingerprint, config, rhs) {
                Ok(solution) => return Ok(solution),
                // Shard gone or shedding: walk the ring.
                Err(e @ (ServeError::Io(_) | ServeError::Comm(_))) => {
                    self.drop_connection(node);
                    last_err = Some(e);
                }
                Err(
                    e @ ServeError::Rejected {
                        code: RejectCode::QueueFull | RejectCode::ShuttingDown,
                        ..
                    },
                ) => last_err = Some(e),
                // Invalid / deadline-expired will not improve elsewhere.
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| ServeError::Protocol("no shard reachable".to_string())))
    }

    /// Speculatively warms the factorization of `(a, config)` on the shard
    /// that owns the fingerprint *and* its ring successor, so that a later
    /// solve is a cache hit even if the owner dies in between.  Errors are
    /// reported but non-fatal to subsequent solves.
    pub fn warm(&self, a: &CsrMatrix, config: &MultisplittingConfig) -> Result<usize, ServeError> {
        let fingerprint = a.fingerprint();
        let order = self.route(fingerprint);
        let mut warmed = 0usize;
        let mut last_err = None;
        for node in order.into_iter().take(2) {
            match self.attempt(node, a, fingerprint, config, &[]) {
                Ok(_) => warmed += 1,
                Err(e) => {
                    self.drop_connection(node);
                    last_err = Some(e);
                }
            }
        }
        if warmed == 0 {
            Err(last_err.unwrap_or_else(|| ServeError::Protocol("no shard reachable".to_string())))
        } else {
            Ok(warmed)
        }
    }

    /// Fetches a stats snapshot from every reachable shard.
    pub fn stats(&self) -> Vec<Message> {
        let mut out = Vec::new();
        for node in 0..self.addrs.len() {
            let Ok(conn) = self.connection(node) else {
                continue;
            };
            if let Ok(reply @ Message::ServerStats { .. }) =
                conn.round_trip(0, &Message::StatsQuery)
            {
                out.push(reply);
            }
        }
        out
    }

    /// The shard index the ring currently routes `fingerprint` to.
    pub fn primary_shard(&self, fingerprint: u64) -> usize {
        self.route(fingerprint)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(addrs: &[&str]) -> ServeClient {
        let addrs: Vec<String> = addrs.iter().map(|s| s.to_string()).collect();
        ServeClient::new(&addrs, ClientOptions::default()).unwrap()
    }

    #[test]
    fn route_is_deterministic_and_covers_every_node() {
        let c = client(&["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]);
        for fp in [0u64, 1, 99, u64::MAX, 0xDEAD_BEEF] {
            let order = c.route(fp);
            assert_eq!(order.len(), 3);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert_eq!(order, c.route(fp), "routing must be deterministic");
        }
    }

    #[test]
    fn ring_spreads_fingerprints_over_shards() {
        let c = client(&["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]);
        let mut counts = [0usize; 3];
        for i in 0..3000u64 {
            // Spread probes over the hash space rather than clustering at
            // small integers.
            let mut h = Fnv64::new();
            h.mix(i);
            counts[c.primary_shard(h.finish())] += 1;
        }
        for (i, &n) in counts.iter().enumerate() {
            assert!(
                n > 300,
                "shard {i} owns only {n}/3000 fingerprints; ring is badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_remaps_its_own_keys() {
        let three = client(&["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]);
        let two = client(&["127.0.0.1:7001", "127.0.0.1:7002"]);
        let mut moved = 0usize;
        let mut total = 0usize;
        for i in 0..2000u64 {
            let mut h = Fnv64::new();
            h.mix(i);
            let fp = h.finish();
            let before = three.primary_shard(fp);
            if before == 2 {
                continue; // owned by the removed shard; must remap
            }
            total += 1;
            if two.primary_shard(fp) != before {
                moved += 1;
            }
        }
        assert!(
            moved * 10 < total,
            "{moved}/{total} surviving keys moved; consistent hashing should keep them put"
        );
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert!(ServeClient::new(&[], ClientOptions::default()).is_err());
    }
}
