//! Byte codecs for the opaque blobs of the serve protocol.
//!
//! [`Message::SubmitSolve`](msplit_comm::Message) carries the solver
//! configuration and the matrix as length-prefixed byte blobs so that
//! `msplit-comm` stays independent of the solver crates.  This module is the
//! single place that defines those encodings; both the server and the client
//! go through it, and a version byte guards each blob so a mixed-version
//! fleet fails with a typed error instead of a garbage solve.

use crate::ServeError;
use msplit_core::solver::{ExecutionMode, Method, MultisplittingConfig};
use msplit_core::weighting::WeightingScheme;
use msplit_direct::SolverKind;
use msplit_sparse::CsrMatrix;

/// Version byte of the configuration encoding.
///
/// * v1 — through the Elastic-grid release: everything up to and including
///   `relative_speeds`.
/// * v2 — appends the outer-iteration [`Method`] (tag byte + restart +
///   inner sweeps) after the speeds.  v1 blobs are still accepted and decode
///   to [`Method::Stationary`], which is exactly what every v1 sender meant.
const CONFIG_VERSION: u8 = 2;
/// Oldest configuration encoding this build still decodes.
const CONFIG_VERSION_MIN: u8 = 1;
/// Version byte of the matrix encoding.
const MATRIX_VERSION: u8 = 1;

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8], what: &'static str) -> Self {
        Reader { data, pos: 0, what }
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| ServeError::Protocol(format!("truncated {} blob", self.what)))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        let end = self.pos + 8;
        let raw = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| ServeError::Protocol(format!("truncated {} blob", self.what)))?;
        self.pos = end;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` that must fit in `usize` and stay below `cap` (an upper bound
    /// derived from the blob length, so a corrupted count cannot drive a
    /// huge allocation).
    fn count(&mut self, cap: usize) -> Result<usize, ServeError> {
        let n = self.u64()?;
        if n > cap as u64 {
            return Err(ServeError::Protocol(format!(
                "{} blob announces {n} elements but only {cap} could fit",
                self.what
            )));
        }
        Ok(n as usize)
    }

    fn finish(self) -> Result<(), ServeError> {
        if self.pos != self.data.len() {
            return Err(ServeError::Protocol(format!(
                "{} blob has {} trailing bytes",
                self.what,
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes a solver configuration for [`Message::SubmitSolve`](msplit_comm::Message).
pub fn encode_config(config: &MultisplittingConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 3 + 8 * (5 + config.relative_speeds.len()));
    out.push(CONFIG_VERSION);
    put_u64(&mut out, config.parts as u64);
    put_u64(&mut out, config.overlap as u64);
    out.push(match config.weighting {
        WeightingScheme::OwnerTakes => 0,
        WeightingScheme::Average => 1,
        WeightingScheme::FirstCovering => 2,
    });
    out.push(match config.solver_kind {
        SolverKind::SparseLu => 0,
        SolverKind::DenseLu => 1,
        SolverKind::BandLu => 2,
    });
    out.push(match config.mode {
        ExecutionMode::Synchronous => 0,
        ExecutionMode::Asynchronous => 1,
    });
    put_u64(&mut out, config.tolerance.to_bits());
    put_u64(&mut out, config.max_iterations);
    put_u64(&mut out, config.async_confirmations);
    put_u64(&mut out, config.relative_speeds.len() as u64);
    for s in &config.relative_speeds {
        put_u64(&mut out, s.to_bits());
    }
    // v2 suffix: the method selector.  Unused knobs encode as zero so every
    // method occupies the same number of bytes (simpler truncation fuzzing).
    let (tag, restart, inner_sweeps) = match config.method {
        Method::Stationary => (0u8, 0u64, 0u64),
        Method::Richardson { inner_sweeps } => (1, 0, inner_sweeps),
        Method::Fgmres {
            restart,
            inner_sweeps,
        } => (2, restart as u64, inner_sweeps),
    };
    out.push(tag);
    put_u64(&mut out, restart);
    put_u64(&mut out, inner_sweeps);
    out
}

/// Parses a configuration blob produced by [`encode_config`].
pub fn decode_config(blob: &[u8]) -> Result<MultisplittingConfig, ServeError> {
    let mut r = Reader::new(blob, "config");
    let version = r.u8()?;
    if !(CONFIG_VERSION_MIN..=CONFIG_VERSION).contains(&version) {
        return Err(ServeError::Protocol(format!(
            "config blob version {version}, this build speaks {CONFIG_VERSION_MIN}..={CONFIG_VERSION}"
        )));
    }
    let parts = r.u64()? as usize;
    let overlap = r.u64()? as usize;
    let weighting = match r.u8()? {
        0 => WeightingScheme::OwnerTakes,
        1 => WeightingScheme::Average,
        2 => WeightingScheme::FirstCovering,
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown weighting scheme {other}"
            )))
        }
    };
    let solver_kind = match r.u8()? {
        0 => SolverKind::SparseLu,
        1 => SolverKind::DenseLu,
        2 => SolverKind::BandLu,
        other => return Err(ServeError::Protocol(format!("unknown solver kind {other}"))),
    };
    let mode = match r.u8()? {
        0 => ExecutionMode::Synchronous,
        1 => ExecutionMode::Asynchronous,
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown execution mode {other}"
            )))
        }
    };
    let tolerance = r.f64()?;
    let max_iterations = r.u64()?;
    let async_confirmations = r.u64()?;
    let nspeeds = r.count(blob.len() / 8)?;
    let mut relative_speeds = Vec::with_capacity(nspeeds);
    for _ in 0..nspeeds {
        relative_speeds.push(r.f64()?);
    }
    // v1 blobs end here; every v1 sender ran the stationary method.
    let method = if version >= 2 {
        let tag = r.u8()?;
        let restart = r.u64()? as usize;
        let inner_sweeps = r.u64()?;
        match tag {
            0 => Method::Stationary,
            1 => {
                if inner_sweeps == 0 {
                    return Err(ServeError::Protocol(
                        "Richardson blob with zero inner sweeps".into(),
                    ));
                }
                Method::Richardson { inner_sweeps }
            }
            2 => {
                if restart == 0 || inner_sweeps == 0 {
                    return Err(ServeError::Protocol(
                        "FGMRES blob with zero restart or inner sweeps".into(),
                    ));
                }
                Method::Fgmres {
                    restart,
                    inner_sweeps,
                }
            }
            other => return Err(ServeError::Protocol(format!("unknown method tag {other}"))),
        }
    } else {
        Method::Stationary
    };
    r.finish()?;
    Ok(MultisplittingConfig {
        parts,
        overlap,
        weighting,
        solver_kind,
        tolerance,
        max_iterations,
        mode,
        async_confirmations,
        relative_speeds,
        method,
    })
}

/// Serializes a CSR matrix for [`Message::SubmitSolve`](msplit_comm::Message).
pub fn encode_matrix(a: &CsrMatrix) -> Vec<u8> {
    let nnz = a.nnz();
    let mut out = Vec::with_capacity(1 + 8 * (3 + a.rows() + 1 + 2 * nnz));
    out.push(MATRIX_VERSION);
    put_u64(&mut out, a.rows() as u64);
    put_u64(&mut out, a.cols() as u64);
    put_u64(&mut out, nnz as u64);
    for &p in a.row_ptr() {
        put_u64(&mut out, p as u64);
    }
    for &c in a.col_indices() {
        put_u64(&mut out, c as u64);
    }
    for &v in a.values() {
        put_u64(&mut out, v.to_bits());
    }
    out
}

/// Parses a matrix blob produced by [`encode_matrix`], re-validating the CSR
/// invariants (the blob crossed a network).
pub fn decode_matrix(blob: &[u8]) -> Result<CsrMatrix, ServeError> {
    let mut r = Reader::new(blob, "matrix");
    let version = r.u8()?;
    if version != MATRIX_VERSION {
        return Err(ServeError::Protocol(format!(
            "matrix blob version {version}, this build speaks {MATRIX_VERSION}"
        )));
    }
    let rows = r.u64()? as usize;
    let cols = r.u64()? as usize;
    let cap = blob.len() / 8;
    let nnz = r.count(cap)?;
    if rows + 1 > cap {
        return Err(ServeError::Protocol(format!(
            "matrix blob announces {rows} rows but only {cap} words follow"
        )));
    }
    let mut row_ptr = Vec::with_capacity(rows + 1);
    for _ in 0..rows + 1 {
        row_ptr.push(r.u64()? as usize);
    }
    let mut col_indices = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_indices.push(r.u64()? as usize);
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(r.f64()?);
    }
    r.finish()?;
    CsrMatrix::from_raw(rows, cols, row_ptr, col_indices, values)
        .map_err(|e| ServeError::Protocol(format!("matrix blob rejected: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msplit_sparse::generators::{self, DiagDominantConfig};

    #[test]
    fn config_round_trip_preserves_every_field() {
        for method in [
            Method::Stationary,
            Method::Richardson { inner_sweeps: 3 },
            Method::Fgmres {
                restart: 30,
                inner_sweeps: 2,
            },
        ] {
            let config = MultisplittingConfig {
                parts: 5,
                overlap: 2,
                weighting: WeightingScheme::Average,
                solver_kind: SolverKind::BandLu,
                tolerance: 3.25e-9,
                max_iterations: 123,
                mode: ExecutionMode::Asynchronous,
                async_confirmations: 7,
                relative_speeds: vec![1.0, 2.5, 0.75],
                method,
            };
            let back = decode_config(&encode_config(&config)).unwrap();
            assert_eq!(format!("{config:?}"), format!("{back:?}"));
        }
    }

    /// Re-encodes a config in the v1 layout (no method suffix), as an
    /// Elastic-grid-era sender would have produced it.
    fn encode_config_v1(config: &MultisplittingConfig) -> Vec<u8> {
        let mut blob = encode_config(config);
        blob[0] = 1;
        blob.truncate(blob.len() - (1 + 8 + 8));
        blob
    }

    #[test]
    fn v1_blobs_still_decode_as_stationary() {
        let config = MultisplittingConfig {
            parts: 4,
            overlap: 1,
            relative_speeds: vec![1.0, 2.0, 1.0, 1.0],
            // A v1 sender could never express this; the field is simply
            // absent from its blob.
            method: Method::Stationary,
            ..Default::default()
        };
        let blob = encode_config_v1(&config);
        let back = decode_config(&blob).unwrap();
        assert_eq!(back.method, Method::Stationary);
        assert_eq!(back.parts, 4);
        assert_eq!(back.relative_speeds, config.relative_speeds);
    }

    #[test]
    fn unknown_method_tags_and_zero_knobs_are_rejected() {
        let base = encode_config(&MultisplittingConfig::default());
        let suffix = base.len() - (1 + 8 + 8);
        // Unknown tag.
        let mut wrong = base.clone();
        wrong[suffix] = 9;
        assert!(decode_config(&wrong).is_err());
        // Richardson with zero inner sweeps.
        let mut zero_sweeps = base.clone();
        zero_sweeps[suffix] = 1;
        assert!(decode_config(&zero_sweeps).is_err());
        // FGMRES with zero restart.
        let mut zero_restart = base;
        zero_restart[suffix] = 2;
        assert!(decode_config(&zero_restart).is_err());
    }

    #[test]
    fn matrix_round_trip_preserves_the_fingerprint() {
        let a = generators::diag_dominant(&DiagDominantConfig {
            n: 60,
            seed: 4,
            ..Default::default()
        });
        let back = decode_matrix(&encode_matrix(&a)).unwrap();
        assert_eq!(back.fingerprint(), a.fingerprint());
        assert_eq!(back.nnz(), a.nnz());
    }

    #[test]
    fn truncations_and_bad_versions_are_typed_errors() {
        let blob = encode_config(&MultisplittingConfig::default());
        for cut in 0..blob.len() {
            assert!(decode_config(&blob[..cut]).is_err(), "cut at {cut}");
        }
        let mut wrong = blob.clone();
        wrong[0] = 9;
        assert!(decode_config(&wrong).is_err());

        let m = encode_matrix(&generators::tridiagonal(10, 4.0, -1.0));
        for cut in 0..m.len() {
            assert!(decode_matrix(&m[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut padded = m.clone();
        padded.extend_from_slice(&[0; 8]);
        assert!(decode_matrix(&padded).is_err());
    }

    #[test]
    fn corrupted_counts_cannot_drive_allocations() {
        let mut m = encode_matrix(&generators::tridiagonal(10, 4.0, -1.0));
        // nnz field sits after version + rows + cols.
        m[17..25].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_matrix(&m).is_err());
    }
}
