//! One shard of the solve fleet: listener, admission control, coalescer.
//!
//! A [`SolveServer`] accepts serve-protocol connections (handshakes with
//! `world_size == 0`), admits [`Message::SubmitSolve`] requests against
//! per-lane queue limits, and hands them to the embedded
//! [`msplit_engine::Engine`].  Compatible single-RHS requests — same matrix
//! fingerprint *and* identical solver configuration, i.e. the same
//! [`MatrixKey`] — that arrive within one coalescing window are merged into a
//! single batched sweep.  The batch driver freezes every column at the exact
//! iteration a solo run of that column would stop (see
//! `msplit_core::runtime::ColumnBoard`), so a coalesced response is bitwise
//! identical to the response the request would have received alone; the
//! merge changes latency, never bits.
//!
//! Everything here load-sheds instead of blocking: a full lane, an expired
//! queue deadline or a full engine queue produce a typed [`Message::Reject`]
//! with a retry-after hint, and the connection stays usable.

use crate::codec;
use crate::ServeError;
use msplit_comm::wire::{read_frame, write_frame, Handshake};
use msplit_comm::{CommError, Message, RejectCode};
use msplit_engine::{
    Engine, EngineConfig, EngineError, JobOutcome, MatrixKey, Priority, RhsPayload, SolveRequest,
};
use msplit_sparse::CsrMatrix;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sizing and policy of one serve shard.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard index reported in [`Message::ServerStats`] and used as the
    /// `from` rank of response frames.
    pub shard: usize,
    /// Admission limit per priority lane (highest priority first): a
    /// submit whose lane already holds this many queued-or-pending requests
    /// is rejected with [`RejectCode::QueueFull`] instead of blocking.
    pub lane_limits: [usize; Priority::COUNT],
    /// How long the coalescer holds the first request of a [`MatrixKey`]
    /// group open for compatible requests to join it.
    pub coalesce_window: Duration,
    /// Maximum requests merged into one sweep; a group at this size flushes
    /// immediately.
    pub max_batch: usize,
    /// Sizing of the embedded engine (workers, queue, cache).
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shard: 0,
            lane_limits: [16, 32, 64],
            coalesce_window: Duration::from_millis(5),
            max_batch: 32,
            engine: EngineConfig::default(),
        }
    }
}

/// One queued request waiting in a coalescing group.
struct Member {
    request_id: u64,
    conn: Arc<ConnHandle>,
    rhs: Vec<f64>,
    admitted_at: Instant,
    deadline: Option<Instant>,
}

/// Requests for one [`MatrixKey`] collected during a coalescing window.
struct Group {
    matrix: Arc<CsrMatrix>,
    config: msplit_core::solver::MultisplittingConfig,
    priority: Priority,
    members: Vec<Member>,
    opened_at: Instant,
}

#[derive(Default)]
struct PendingState {
    groups: HashMap<MatrixKey, Group>,
}

impl PendingState {
    fn lane_count(&self, lane: usize) -> usize {
        self.groups
            .values()
            .filter(|g| g.priority.lane() == lane)
            .map(|g| g.members.len())
            .sum()
    }
}

/// Counters the server keeps on top of the engine's own report.
#[derive(Default)]
struct Counters {
    completed: AtomicU64,
    rejected: AtomicU64,
    coalesced: AtomicU64,
    batches: AtomicU64,
}

struct Inner {
    config: ServeConfig,
    engine: Engine,
    pending: Mutex<PendingState>,
    pending_changed: Condvar,
    /// Matrices this shard has decoded before, keyed by fingerprint, so a
    /// warmed client can submit with an empty matrix blob.
    known: Mutex<HashMap<u64, Arc<CsrMatrix>>>,
    counters: Counters,
    shutdown: AtomicBool,
}

/// A serialized writer for one client connection (reader and dispatch
/// threads both respond on it).
struct ConnHandle {
    stream: Mutex<TcpStream>,
    shard: usize,
}

impl ConnHandle {
    fn send(&self, msg: &Message) -> Result<(), CommError> {
        use std::io::Write;
        let mut stream = self.stream.lock();
        write_frame(&mut *stream, self.shard, msg)?;
        stream
            .flush()
            .map_err(|e| CommError::Io(format!("response flush failed: {e}")))
    }
}

/// A running serve shard.  Dropping it (or calling [`SolveServer::shutdown`])
/// closes the listener, drains in-flight work and joins every thread.
pub struct SolveServer {
    inner: Arc<Inner>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    coalescer_thread: Option<std::thread::JoinHandle<()>>,
}

impl SolveServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(addr: &str, config: ServeConfig) -> Result<SolveServer, ServeError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Io(format!("bind {addr} failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr failed: {e}")))?;
        let engine = Engine::new(config.engine.clone());
        let inner = Arc::new(Inner {
            config,
            engine,
            pending: Mutex::new(PendingState::default()),
            pending_changed: Condvar::new(),
            known: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name(format!("msplit-serve-accept-{}", inner.config.shard))
            .spawn(move || accept_loop(&listener, &accept_inner))
            .map_err(|e| ServeError::Io(format!("spawning accept thread: {e}")))?;
        let coalescer_inner = Arc::clone(&inner);
        let coalescer_thread = std::thread::Builder::new()
            .name(format!("msplit-serve-coalescer-{}", inner.config.shard))
            .spawn(move || coalescer_loop(&coalescer_inner))
            .map_err(|e| ServeError::Io(format!("spawning coalescer thread: {e}")))?;
        Ok(SolveServer {
            inner,
            local_addr,
            accept_thread: Some(accept_thread),
            coalescer_thread: Some(coalescer_thread),
        })
    }

    /// The address the shard is listening on.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stops accepting, flushes pending groups and joins the threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.pending_changed.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.coalescer_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SolveServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_inner = Arc::clone(inner);
        let _ = std::thread::Builder::new()
            .name(format!("msplit-serve-conn-{}", inner.config.shard))
            .spawn(move || {
                let _ = serve_connection(stream, &conn_inner);
            });
    }
}

/// Handles one client connection: handshake, then a request loop.
fn serve_connection(mut stream: TcpStream, inner: &Arc<Inner>) -> Result<(), CommError> {
    stream
        .set_nodelay(true)
        .map_err(|e| CommError::Io(format!("socket setup: {e}")))?;
    let hello = Handshake::read_from(&mut stream)?;
    if hello.world_size != 0 {
        // A mesh rank dialed a serve port: refuse loudly at connect time.
        return Err(CommError::Codec(format!(
            "serve port received a mesh handshake (world_size {})",
            hello.world_size
        )));
    }
    // Echo the handshake with this shard's identity; a nonzero fingerprint
    // pins the connection to that matrix.
    let pinned = (hello.fingerprint != 0).then_some(hello.fingerprint);
    Handshake {
        rank: inner.config.shard,
        world_size: 0,
        fingerprint: hello.fingerprint,
    }
    .write_to(&mut stream)?;

    let reader = stream
        .try_clone()
        .map_err(|e| CommError::Io(format!("stream clone failed: {e}")))?;
    let conn = Arc::new(ConnHandle {
        stream: Mutex::new(stream),
        shard: inner.config.shard,
    });
    let mut reader = reader;
    loop {
        let (_, msg) = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(CommError::Disconnected { .. }) => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            Message::SubmitSolve {
                request_id,
                fingerprint,
                priority,
                queue_deadline_micros,
                config,
                matrix,
                rhs,
            } => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    reject(
                        inner,
                        &conn,
                        request_id,
                        RejectCode::ShuttingDown,
                        0,
                        "shard is shutting down",
                    );
                    continue;
                }
                if let Some(pin) = pinned {
                    if fingerprint != pin {
                        reject(
                            inner,
                            &conn,
                            request_id,
                            RejectCode::Invalid,
                            0,
                            &format!("connection is pinned to fingerprint {pin:#x}"),
                        );
                        continue;
                    }
                }
                handle_submit(
                    inner,
                    &conn,
                    request_id,
                    fingerprint,
                    priority,
                    queue_deadline_micros,
                    &config,
                    matrix,
                    rhs,
                );
            }
            Message::StatsQuery => {
                let _ = conn.send(&server_stats(inner));
            }
            Message::Halt => return Ok(()),
            other => {
                return Err(CommError::Codec(format!(
                    "unexpected frame on a serve connection: {other:?}"
                )))
            }
        }
    }
}

fn reject(
    inner: &Inner,
    conn: &ConnHandle,
    request_id: u64,
    code: RejectCode,
    retry_after_micros: u64,
    detail: &str,
) {
    inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
    let _ = conn.send(&Message::Reject {
        request_id,
        code,
        retry_after_micros,
        detail: detail.to_string(),
    });
}

fn server_stats(inner: &Inner) -> Message {
    let report = inner.engine.report();
    let depths = inner.engine.lane_depths();
    Message::ServerStats {
        shard: inner.config.shard as u64,
        completed: inner.counters.completed.load(Ordering::Relaxed),
        rejected: inner.counters.rejected.load(Ordering::Relaxed),
        coalesced: inner.counters.coalesced.load(Ordering::Relaxed),
        batches: inner.counters.batches.load(Ordering::Relaxed),
        cache_evictions: report.cache_evictions,
        single_flight_waits: report.single_flight_waits,
        single_flight_wait_micros: (report.single_flight_wait_seconds * 1e6) as u64,
        sparse_fastpath_hits: report.sparse_fastpath_hits,
        dense_fallbacks: report.dense_fallbacks,
        mean_reach_ppm: (report.mean_reach_fraction * 1e6).round() as u64,
        queue_depths: {
            let pending = inner.pending.lock();
            [
                (depths[0] + pending.lane_count(0)) as u64,
                (depths[1] + pending.lane_count(1)) as u64,
                (depths[2] + pending.lane_count(2)) as u64,
            ]
        },
    }
}

/// Admission + coalescing for one submit.
#[allow(clippy::too_many_arguments)]
fn handle_submit(
    inner: &Arc<Inner>,
    conn: &Arc<ConnHandle>,
    request_id: u64,
    fingerprint: u64,
    priority: u8,
    queue_deadline_micros: u64,
    config_blob: &[u8],
    matrix_blob: Vec<u8>,
    rhs: Vec<f64>,
) {
    let window_micros = inner.config.coalesce_window.as_micros() as u64;
    let config = match codec::decode_config(config_blob) {
        Ok(c) => c,
        Err(e) => {
            reject(
                inner,
                conn,
                request_id,
                RejectCode::Invalid,
                0,
                &format!("{e}"),
            );
            return;
        }
    };
    let priority = match priority {
        0 => Priority::High,
        1 => Priority::Normal,
        2 => Priority::Low,
        other => {
            reject(
                inner,
                conn,
                request_id,
                RejectCode::Invalid,
                0,
                &format!("unknown priority lane {other}"),
            );
            return;
        }
    };

    // Resolve the matrix: an empty blob means "you have seen this
    // fingerprint before"; a non-empty blob is decoded, checked against the
    // announced fingerprint and remembered.
    let matrix: Arc<CsrMatrix> = if matrix_blob.is_empty() {
        match inner.known.lock().get(&fingerprint) {
            Some(a) => Arc::clone(a),
            None => {
                reject(
                    inner,
                    conn,
                    request_id,
                    RejectCode::Invalid,
                    0,
                    "unknown matrix: resend with the matrix blob",
                );
                return;
            }
        }
    } else {
        let a = match codec::decode_matrix(&matrix_blob) {
            Ok(a) => a,
            Err(e) => {
                reject(
                    inner,
                    conn,
                    request_id,
                    RejectCode::Invalid,
                    0,
                    &format!("{e}"),
                );
                return;
            }
        };
        if a.fingerprint() != fingerprint {
            reject(
                inner,
                conn,
                request_id,
                RejectCode::Invalid,
                0,
                &format!(
                    "announced fingerprint {fingerprint:#x} but the matrix hashes to {:#x}",
                    a.fingerprint()
                ),
            );
            return;
        }
        let a = Arc::new(a);
        inner
            .known
            .lock()
            .entry(fingerprint)
            .or_insert_with(|| Arc::clone(&a));
        a
    };

    // A warm request prepares the factorization and returns immediately;
    // it bypasses the coalescer (there is nothing to merge).
    if rhs.is_empty() {
        let request = SolveRequest::new(Arc::clone(&matrix), RhsPayload::Batch(Vec::new()))
            .with_config(config)
            .with_priority(priority);
        match inner.engine.try_submit(request) {
            Ok(handle) => {
                let inner = Arc::clone(inner);
                let conn = Arc::clone(conn);
                let started = Instant::now();
                let _ = std::thread::Builder::new()
                    .name("msplit-serve-warm".to_string())
                    .spawn(move || match handle.wait() {
                        Ok(_) => {
                            inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                            let _ = conn.send(&Message::SolveResult {
                                request_id,
                                iterations: 0,
                                coalesced: 1,
                                queue_micros: started.elapsed().as_micros() as u64,
                                x: Vec::new(),
                            });
                        }
                        Err(e) => {
                            let (code, retry) = map_engine_error(&e, window_micros);
                            reject(&inner, &conn, request_id, code, retry, &format!("{e}"));
                        }
                    });
            }
            Err(e) => {
                let (code, retry) = map_engine_error(&e, window_micros);
                reject(inner, conn, request_id, code, retry, &format!("{e}"));
            }
        }
        return;
    }

    if rhs.len() != matrix.rows() {
        reject(
            inner,
            conn,
            request_id,
            RejectCode::Invalid,
            0,
            &format!(
                "right-hand side has {} entries, the matrix order is {}",
                rhs.len(),
                matrix.rows()
            ),
        );
        return;
    }

    let key = MatrixKey::new(&matrix, &config);
    let now = Instant::now();
    let deadline =
        (queue_deadline_micros > 0).then(|| now + Duration::from_micros(queue_deadline_micros));
    let member = Member {
        request_id,
        conn: Arc::clone(conn),
        rhs,
        admitted_at: now,
        deadline,
    };

    let lane = priority.lane();
    let mut pending = inner.pending.lock();
    // Re-check shutdown *under the pending lock*: the coalescer's exit
    // decision (`shutdown && groups.is_empty()`) runs under this same lock,
    // so a group inserted here is guaranteed to still have a live coalescer
    // to flush it.  Without this, a submit racing `shutdown()` could park a
    // member in a group nobody will ever dispatch, and its client would
    // block forever waiting for a reply.
    if inner.shutdown.load(Ordering::SeqCst) {
        drop(pending);
        reject(
            inner,
            conn,
            request_id,
            RejectCode::ShuttingDown,
            0,
            "shard is shutting down",
        );
        return;
    }
    // Admission control: the lane budget covers both the engine's queued
    // jobs and the requests still sitting in coalescing groups.
    let occupied = inner.engine.lane_depths()[lane] + pending.lane_count(lane);
    if occupied >= inner.config.lane_limits[lane] {
        drop(pending);
        reject(
            inner,
            conn,
            request_id,
            RejectCode::QueueFull,
            window_micros.max(1),
            &format!(
                "lane {lane} is at its {} request limit",
                inner.config.lane_limits[lane]
            ),
        );
        return;
    }
    let group = pending.groups.entry(key).or_insert_with(|| Group {
        matrix,
        config,
        priority,
        members: Vec::new(),
        opened_at: now,
    });
    // Requests can only coalesce when every batched column stops exactly
    // where its solo run would (the ColumnBoard guarantee); the group's
    // priority is raised to the most urgent member so merging never delays
    // a high-priority request behind a low lane.
    if priority > group.priority {
        group.priority = priority;
    }
    group.members.push(member);
    let full = group.members.len() >= inner.config.max_batch;
    drop(pending);
    inner.pending_changed.notify_all();
    if full {
        flush_due_groups(inner, true);
    }
}

fn map_engine_error(e: &EngineError, window_micros: u64) -> (RejectCode, u64) {
    match e {
        EngineError::QueueFull => (RejectCode::QueueFull, window_micros.max(1)),
        EngineError::ShuttingDown => (RejectCode::ShuttingDown, 0),
        EngineError::TimedOut => (RejectCode::DeadlineExpired, window_micros.max(1)),
        EngineError::Cancelled | EngineError::InvalidRequest(_) | EngineError::Solver(_) => {
            (RejectCode::Invalid, 0)
        }
    }
}

/// The coalescer: wakes when a group opens (or the window elapses), flushes
/// every group whose window closed or that reached the batch cap.
fn coalescer_loop(inner: &Arc<Inner>) {
    loop {
        {
            let mut pending = inner.pending.lock();
            if inner.shutdown.load(Ordering::SeqCst) && pending.groups.is_empty() {
                return;
            }
            let window = inner.config.coalesce_window;
            let next_due = pending.groups.values().map(|g| g.opened_at + window).min();
            match next_due {
                Some(due) => {
                    let now = Instant::now();
                    if due > now {
                        inner.pending_changed.wait_for(&mut pending, due - now);
                    }
                }
                None => {
                    inner
                        .pending_changed
                        .wait_for(&mut pending, Duration::from_millis(50));
                }
            }
        }
        flush_due_groups(inner, false);
    }
}

/// Removes and dispatches every group that is due (window elapsed or batch
/// cap reached); with `force` every group flushes regardless of age.
fn flush_due_groups(inner: &Arc<Inner>, force: bool) {
    let window = inner.config.coalesce_window;
    let max_batch = inner.config.max_batch;
    let due: Vec<Group> = {
        let mut pending = inner.pending.lock();
        let force = force || inner.shutdown.load(Ordering::SeqCst);
        let keys: Vec<MatrixKey> = pending
            .groups
            .iter()
            .filter(|(_, g)| {
                force || g.opened_at.elapsed() >= window || g.members.len() >= max_batch
            })
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .filter_map(|k| pending.groups.remove(&k))
            .collect()
    };
    for group in due {
        dispatch_group(inner, group);
    }
}

/// Submits one flushed group to the engine and demultiplexes the answer.
fn dispatch_group(inner: &Arc<Inner>, group: Group) {
    let window_micros = inner.config.coalesce_window.as_micros() as u64;
    let now = Instant::now();
    // Queue-deadline rejection: members whose budget elapsed while the group
    // was open are shed here, before any solve work is spent on them.
    let (live, expired): (Vec<Member>, Vec<Member>) = group
        .members
        .into_iter()
        .partition(|m| m.deadline.is_none_or(|d| d > now));
    for m in expired {
        reject(
            inner,
            &m.conn,
            m.request_id,
            RejectCode::DeadlineExpired,
            window_micros.max(1),
            "queue deadline expired before the solve started",
        );
    }
    if live.is_empty() {
        return;
    }

    let payload = if live.len() == 1 {
        RhsPayload::Single(live[0].rhs.clone())
    } else {
        RhsPayload::Batch(live.iter().map(|m| m.rhs.clone()).collect())
    };
    let request = SolveRequest::new(Arc::clone(&group.matrix), payload)
        .with_config(group.config.clone())
        .with_priority(group.priority);
    let handle = match inner.engine.try_submit(request) {
        Ok(h) => h,
        Err(e) => {
            let (code, retry) = map_engine_error(&e, window_micros);
            for m in &live {
                reject(inner, &m.conn, m.request_id, code, retry, &format!("{e}"));
            }
            return;
        }
    };
    inner.counters.batches.fetch_add(1, Ordering::Relaxed);
    if live.len() > 1 {
        inner
            .counters
            .coalesced
            .fetch_add(live.len() as u64, Ordering::Relaxed);
    }

    let inner = Arc::clone(inner);
    let _ = std::thread::Builder::new()
        .name("msplit-serve-dispatch".to_string())
        .spawn(move || {
            let coalesced = live.len() as u64;
            match handle.wait() {
                Ok(outcome) => match &*outcome {
                    JobOutcome::Single(o) => {
                        let m = &live[0];
                        finish_member(
                            &inner,
                            m,
                            o.converged,
                            o.iterations,
                            coalesced,
                            o.wall_seconds,
                            &o.x,
                        );
                    }
                    JobOutcome::Batch(o) => {
                        for (c, m) in live.iter().enumerate() {
                            // Report the iteration the column froze at — the
                            // count a solo run would have reported — rather
                            // than the sweep count of the whole batch.
                            let iterations = o
                                .column_converged_at
                                .get(c)
                                .copied()
                                .flatten()
                                .unwrap_or(o.iterations);
                            finish_member(
                                &inner,
                                m,
                                o.column_converged(c),
                                iterations,
                                coalesced,
                                o.wall_seconds,
                                &o.columns[c],
                            );
                        }
                    }
                },
                Err(e) => {
                    let (code, retry) = map_engine_error(&e, window_micros);
                    for m in &live {
                        reject(&inner, &m.conn, m.request_id, code, retry, &format!("{e}"));
                    }
                }
            }
        });
}

fn finish_member(
    inner: &Inner,
    m: &Member,
    converged: bool,
    iterations: u64,
    coalesced: u64,
    solve_seconds: f64,
    x: &[f64],
) {
    if !converged {
        reject(
            inner,
            &m.conn,
            m.request_id,
            RejectCode::Invalid,
            0,
            &format!("did not converge within {iterations} iterations"),
        );
        return;
    }
    // Queue latency = admission to completion minus the solve itself; the
    // coalescing hold and the engine queue wait both count against it.
    let total_micros = m.admitted_at.elapsed().as_micros() as u64;
    let solve_micros = (solve_seconds * 1e6) as u64;
    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
    let _ = m.conn.send(&Message::SolveResult {
        request_id: m.request_id,
        iterations,
        coalesced,
        queue_micros: total_micros.saturating_sub(solve_micros),
        x: x.to_vec(),
    });
}
