//! Cache keys identifying a prepared system exactly.

use msplit_core::solver::MultisplittingConfig;
use msplit_sparse::fingerprint::Fnv64;
use msplit_sparse::CsrMatrix;

/// Key of one [`crate::FactorizationCache`] entry.
///
/// Two requests share a cache entry iff they present the identical matrix
/// (same [`CsrMatrix::fingerprint`]: same shape, sparsity pattern and value
/// bits) *and* an identical solve configuration — a prepared system bakes in
/// the partition (parts, overlap, relative speeds), the per-block solver and
/// the convergence knobs, so any configuration difference must miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixKey {
    /// [`CsrMatrix::fingerprint`] of the system matrix.
    pub fingerprint: u64,
    /// FNV-1a digest of every configuration field that shapes the prepared
    /// system or the solve it performs.
    pub config_digest: u64,
}

impl MatrixKey {
    /// Builds the key for a request.
    pub fn new(a: &CsrMatrix, config: &MultisplittingConfig) -> Self {
        MatrixKey {
            fingerprint: a.fingerprint(),
            config_digest: digest_config(config),
        }
    }
}

fn digest_config(config: &MultisplittingConfig) -> u64 {
    let mut h = Fnv64::new();
    h.mix(config.parts as u64);
    h.mix(config.overlap as u64);
    // Enum discriminants (and the method's embedded knobs) are hashed through
    // their Debug rendering, which is stable within a build and keeps this
    // free of per-variant match arms.
    for b in format!(
        "{:?}/{:?}/{:?}/{:?}",
        config.weighting, config.solver_kind, config.mode, config.method
    )
    .bytes()
    {
        h.mix(b as u64);
    }
    h.mix(config.tolerance.to_bits());
    h.mix(config.max_iterations);
    h.mix(config.async_confirmations);
    h.mix(config.relative_speeds.len() as u64);
    for s in &config.relative_speeds {
        h.mix(s.to_bits());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msplit_core::solver::{ExecutionMode, Method};
    use msplit_direct::SolverKind;
    use msplit_sparse::generators;

    #[test]
    fn same_matrix_same_config_same_key() {
        let a = generators::tridiagonal(40, 4.0, -1.0);
        let cfg = MultisplittingConfig::default();
        assert_eq!(MatrixKey::new(&a, &cfg), MatrixKey::new(&a.clone(), &cfg));
    }

    #[test]
    fn different_matrices_differ() {
        let a = generators::tridiagonal(40, 4.0, -1.0);
        let b = generators::tridiagonal(40, 4.0, -1.5);
        let cfg = MultisplittingConfig::default();
        assert_ne!(MatrixKey::new(&a, &cfg), MatrixKey::new(&b, &cfg));
    }

    #[test]
    fn every_config_knob_changes_the_digest() {
        let a = generators::tridiagonal(40, 4.0, -1.0);
        let base = MultisplittingConfig::default();
        let base_key = MatrixKey::new(&a, &base);
        let variants: Vec<MultisplittingConfig> = vec![
            MultisplittingConfig {
                parts: base.parts + 1,
                ..base.clone()
            },
            MultisplittingConfig {
                overlap: 3,
                ..base.clone()
            },
            MultisplittingConfig {
                solver_kind: SolverKind::DenseLu,
                ..base.clone()
            },
            MultisplittingConfig {
                tolerance: 1e-6,
                ..base.clone()
            },
            MultisplittingConfig {
                max_iterations: 7,
                ..base.clone()
            },
            MultisplittingConfig {
                mode: ExecutionMode::Asynchronous,
                ..base.clone()
            },
            MultisplittingConfig {
                relative_speeds: vec![1.0, 2.0],
                ..base.clone()
            },
            MultisplittingConfig {
                method: Method::Richardson { inner_sweeps: 1 },
                ..base.clone()
            },
            MultisplittingConfig {
                method: Method::Fgmres {
                    restart: 30,
                    inner_sweeps: 1,
                },
                ..base.clone()
            },
            // The embedded knobs must reach the digest too, not just the
            // variant name.
            MultisplittingConfig {
                method: Method::Fgmres {
                    restart: 31,
                    inner_sweeps: 1,
                },
                ..base.clone()
            },
            MultisplittingConfig {
                method: Method::Fgmres {
                    restart: 30,
                    inner_sweeps: 2,
                },
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(MatrixKey::new(&a, v), base_key, "variant {v:?}");
        }
        // The two FGMRES variants differ only in an embedded knob; they must
        // not collide with each other either.
        let n = variants.len();
        assert_ne!(
            MatrixKey::new(&a, &variants[n - 2]),
            MatrixKey::new(&a, &variants[n - 1])
        );
    }
}
