//! LRU cache of prepared systems with single-flight factorization.

use crate::key::MatrixKey;
use crate::EngineError;
use msplit_core::PreparedSystem;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

enum Entry {
    /// A fully prepared system, ready to serve solves.
    Ready {
        prepared: Arc<PreparedSystem>,
        last_used: u64,
    },
    /// Some thread is preparing this key right now; everyone else waits on
    /// the cache condvar instead of factorizing the same matrix again.
    InFlight,
}

struct State {
    entries: HashMap<MatrixKey, Entry>,
    /// Monotonic use counter driving the LRU policy.
    tick: u64,
}

/// Snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a ready entry.
    pub hits: u64,
    /// Requests that had to prepare (or wait for an in-flight preparation
    /// they then re-checked).
    pub misses: u64,
    /// Ready entries discarded by the LRU policy.
    pub evictions: u64,
    /// Successful factorizations performed — with single-flight this equals
    /// the number of *distinct* (matrix, config) keys prepared, no matter how
    /// many threads raced on them.
    pub factorizations: u64,
    /// Requests that blocked behind another caller's in-flight preparation
    /// of the same key (the single-flight wait path).
    pub single_flight_waits: u64,
    /// Total microseconds requests spent blocked behind in-flight
    /// preparations.  Together with `single_flight_waits` this makes
    /// factorization contention on a shard observable: a hot shard serving
    /// many cold keys shows long waits, a warm one shows none.
    pub single_flight_wait_micros: u64,
}

/// An LRU of [`PreparedSystem`]s keyed by [`MatrixKey`], with single-flight
/// deduplication: when `n` threads concurrently request the same key, exactly
/// one runs the factorization while the others block until it is ready.
///
/// The cached unit is the *whole* prepared state of the multisplitting
/// decomposition — partition, per-block `Factorization`s and send-target
/// maps — so a hit skips everything the paper counts as "factorization
/// time" and goes straight to outer iterations.
pub struct FactorizationCache {
    capacity: usize,
    state: Mutex<State>,
    flight_done: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    factorizations: AtomicU64,
    factorize_micros: AtomicU64,
    single_flight_waits: AtomicU64,
    single_flight_wait_micros: AtomicU64,
}

impl FactorizationCache {
    /// Creates a cache holding at most `capacity` ready systems.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        FactorizationCache {
            capacity,
            state: Mutex::new(State {
                entries: HashMap::new(),
                tick: 0,
            }),
            flight_done: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            factorizations: AtomicU64::new(0),
            factorize_micros: AtomicU64::new(0),
            single_flight_waits: AtomicU64::new(0),
            single_flight_wait_micros: AtomicU64::new(0),
        }
    }

    /// Maximum number of ready systems kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ready systems currently cached (in-flight preparations not
    /// counted).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .entries
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }

    /// Whether no ready system is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            factorizations: self.factorizations.load(Ordering::Relaxed),
            single_flight_waits: self.single_flight_waits.load(Ordering::Relaxed),
            single_flight_wait_micros: self.single_flight_wait_micros.load(Ordering::Relaxed),
        }
    }

    /// Total seconds spent inside `prepare` closures (factorize time).
    pub fn factorize_seconds(&self) -> f64 {
        self.factorize_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Returns the prepared system for `key`, preparing it with `prepare` on
    /// a miss.  Concurrent calls with the same key are single-flighted: one
    /// caller runs `prepare`, the rest block and share the result.  If the
    /// preparation fails, the error is returned to the preparing caller and
    /// one of the waiters retries.
    pub fn get_or_prepare<F>(
        &self,
        key: MatrixKey,
        prepare: F,
    ) -> Result<Arc<PreparedSystem>, EngineError>
    where
        F: FnOnce() -> Result<PreparedSystem, EngineError>,
    {
        // Claim the key or wait for whoever holds it.
        enum Action {
            Hit(Arc<PreparedSystem>),
            Wait,
            Claimed,
        }
        {
            let mut guard = self.state.lock();
            // Set once the request first blocks behind an in-flight
            // preparation; the total blocked time is recorded when the
            // request resolves (hit or claim).
            let mut wait_started: Option<Instant> = None;
            let record_wait = |started: Option<Instant>| {
                if let Some(at) = started {
                    self.single_flight_wait_micros
                        .fetch_add(at.elapsed().as_micros() as u64, Ordering::Relaxed);
                }
            };
            loop {
                let action = {
                    let State { entries, tick } = &mut *guard;
                    match entries.get_mut(&key) {
                        Some(Entry::Ready {
                            prepared,
                            last_used,
                        }) => {
                            *tick += 1;
                            *last_used = *tick;
                            Action::Hit(Arc::clone(prepared))
                        }
                        Some(Entry::InFlight) => Action::Wait,
                        None => {
                            entries.insert(key, Entry::InFlight);
                            Action::Claimed
                        }
                    }
                };
                match action {
                    Action::Hit(prepared) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        record_wait(wait_started);
                        return Ok(prepared);
                    }
                    // Re-check after the wakeup: the flight finished (ready
                    // or failed) or another waiter claimed a retry.
                    Action::Wait => {
                        if wait_started.is_none() {
                            wait_started = Some(Instant::now());
                            self.single_flight_waits.fetch_add(1, Ordering::Relaxed);
                        }
                        self.flight_done.wait(&mut guard)
                    }
                    Action::Claimed => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        record_wait(wait_started);
                        break;
                    }
                }
            }
        }

        // Prepare outside the lock so other keys keep flowing.  A panic in
        // `prepare` must not leave the `InFlight` claim behind (it would
        // wedge every later request for this key), so it is converted into
        // an error and handled by the failure path below.
        let started = Instant::now();
        let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(prepare)) {
            Ok(result) => result,
            Err(payload) => Err(EngineError::Solver(format!(
                "preparation panicked: {}",
                panic_text(&payload)
            ))),
        };
        let elapsed_micros = started.elapsed().as_micros() as u64;

        let mut state = self.state.lock();
        let out = match result {
            Ok(prepared) => {
                self.factorizations.fetch_add(1, Ordering::Relaxed);
                self.factorize_micros
                    .fetch_add(elapsed_micros, Ordering::Relaxed);
                let prepared = Arc::new(prepared);
                state.tick += 1;
                let tick = state.tick;
                state.entries.insert(
                    key,
                    Entry::Ready {
                        prepared: Arc::clone(&prepared),
                        last_used: tick,
                    },
                );
                self.evict_over_capacity(&mut state, key);
                Ok(prepared)
            }
            Err(e) => {
                // Failed: drop the claim so a waiter can retry (and observe
                // its own error if the matrix really is singular).
                state.entries.remove(&key);
                Err(e)
            }
        };
        drop(state);
        self.flight_done.notify_all();
        out
    }

    /// Evicts least-recently-used ready entries until at most `capacity`
    /// remain.  The entry just inserted (`keep`) is never evicted, and
    /// in-flight claims are never touched.
    fn evict_over_capacity(&self, state: &mut State, keep: MatrixKey) {
        loop {
            let ready_count = state
                .entries
                .values()
                .filter(|e| matches!(e, Entry::Ready { .. }))
                .count();
            if ready_count <= self.capacity {
                return;
            }
            let victim = state
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } if *k != keep => Some((*k, *last_used)),
                    _ => None,
                })
                .min_by_key(|&(_, used)| used)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    state.entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }
}

/// Best-effort rendering of a panic payload.
pub(crate) fn panic_text(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

impl std::fmt::Debug for FactorizationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FactorizationCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msplit_core::solver::MultisplittingConfig;
    use msplit_sparse::{generators, CsrMatrix};

    fn prepare_for(a: &CsrMatrix, parts: usize) -> Result<PreparedSystem, EngineError> {
        let config = MultisplittingConfig {
            parts,
            ..Default::default()
        };
        PreparedSystem::prepare(config, a).map_err(|e| EngineError::Solver(e.to_string()))
    }

    #[test]
    fn hit_and_miss_counting() {
        let a = generators::tridiagonal(60, 4.0, -1.0);
        let cfg = MultisplittingConfig {
            parts: 2,
            ..Default::default()
        };
        let key = MatrixKey::new(&a, &cfg);
        let cache = FactorizationCache::new(4);
        let first = cache.get_or_prepare(key, || prepare_for(&a, 2)).unwrap();
        let second = cache.get_or_prepare(key, || prepare_for(&a, 2)).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.factorizations, 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.factorize_seconds() >= 0.0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cfg = MultisplittingConfig {
            parts: 2,
            ..Default::default()
        };
        let mats: Vec<CsrMatrix> = (0..3)
            .map(|k| generators::tridiagonal(40 + k, 4.0, -1.0))
            .collect();
        let keys: Vec<MatrixKey> = mats.iter().map(|a| MatrixKey::new(a, &cfg)).collect();
        let cache = FactorizationCache::new(2);
        cache
            .get_or_prepare(keys[0], || prepare_for(&mats[0], 2))
            .unwrap();
        cache
            .get_or_prepare(keys[1], || prepare_for(&mats[1], 2))
            .unwrap();
        // Touch key 0 so key 1 becomes the LRU victim.
        cache
            .get_or_prepare(keys[0], || panic!("must be a hit"))
            .unwrap();
        cache
            .get_or_prepare(keys[2], || prepare_for(&mats[2], 2))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Key 0 must still be cached (hit), key 1 must have been evicted.
        cache
            .get_or_prepare(keys[0], || panic!("key 0 was evicted"))
            .unwrap();
        let refetched = cache.get_or_prepare(keys[1], || prepare_for(&mats[1], 2));
        assert!(refetched.is_ok());
        assert_eq!(cache.stats().factorizations, 4);
    }

    #[test]
    fn failed_preparation_leaves_no_entry() {
        let a = generators::tridiagonal(30, 4.0, -1.0);
        let cfg = MultisplittingConfig::default();
        let key = MatrixKey::new(&a, &cfg);
        let cache = FactorizationCache::new(2);
        let err = cache.get_or_prepare(key, || {
            Err::<PreparedSystem, _>(EngineError::Solver("boom".to_string()))
        });
        assert!(err.is_err());
        assert_eq!(cache.len(), 0);
        // The key can be prepared again afterwards.
        cache.get_or_prepare(key, || prepare_for(&a, 2)).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn panicking_preparation_clears_the_claim() {
        let a = generators::tridiagonal(30, 4.0, -1.0);
        let cfg = MultisplittingConfig::default();
        let key = MatrixKey::new(&a, &cfg);
        let cache = FactorizationCache::new(2);
        let result = cache.get_or_prepare(key, || panic!("pathological request"));
        match result {
            Err(EngineError::Solver(msg)) => assert!(msg.contains("panicked")),
            other => panic!("expected a Solver error, got {other:?}"),
        }
        // The in-flight claim must be gone: a retry prepares normally
        // instead of waiting forever.
        cache.get_or_prepare(key, || prepare_for(&a, 2)).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn single_flight_under_contention() {
        // N threads x M matrices, every thread requesting every matrix:
        // exactly one factorization per distinct matrix must happen.
        const THREADS: usize = 8;
        const MATRICES: usize = 4;
        let cfg = MultisplittingConfig {
            parts: 2,
            ..Default::default()
        };
        let mats: Vec<Arc<CsrMatrix>> = (0..MATRICES)
            .map(|k| Arc::new(generators::tridiagonal(300 + k, 4.0, -1.0)))
            .collect();
        let keys: Vec<MatrixKey> = mats.iter().map(|a| MatrixKey::new(a, &cfg)).collect();
        let cache = Arc::new(FactorizationCache::new(MATRICES));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                let mats = mats.clone();
                let keys = keys.clone();
                scope.spawn(move || {
                    for m in 0..MATRICES {
                        // Stagger the access order per thread to mix races.
                        let m = (m + t) % MATRICES;
                        let prepared = cache
                            .get_or_prepare(keys[m], || prepare_for(&mats[m], 2))
                            .unwrap();
                        assert_eq!(prepared.order(), 300 + m);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(
            stats.factorizations, MATRICES as u64,
            "single-flight must factorize each distinct matrix exactly once"
        );
        assert_eq!(stats.hits + stats.misses, (THREADS * MATRICES) as u64);
        assert_eq!(cache.len(), MATRICES);
    }
}
