//! Solve requests, priorities and the handle used to await a job.

use crate::metrics::Metrics;
use crate::EngineError;
use msplit_core::solver::{BatchSolveOutcome, MultisplittingConfig, SolveOutcome};
use msplit_sparse::CsrMatrix;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Scheduling priority of a job.  Within one priority level jobs run in
/// submission (FIFO) order; a higher level always dequeues first.
///
/// The variants are declared in ascending urgency so the derived `Ord`
/// reads naturally: `Priority::High > Priority::Normal > Priority::Low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Bulk / background work.
    Low,
    /// The default service level.
    #[default]
    Normal,
    /// Latency-sensitive interactive requests.
    High,
}

impl Priority {
    /// Number of priority levels (= queue lanes).
    pub const COUNT: usize = 3;

    /// Queue lane index: lane 0 is dequeued first.
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// The right-hand side(s) a request wants solved against its matrix.
#[derive(Debug, Clone)]
pub enum RhsPayload {
    /// One right-hand side; served by the prepared system's single solve.
    Single(Vec<f64>),
    /// A batch of right-hand sides, served in a single pass of the batched
    /// synchronous driver (one `solve_many` sweep per outer iteration).
    Batch(Vec<Vec<f64>>),
}

impl RhsPayload {
    /// Number of right-hand sides carried.
    pub fn len(&self) -> usize {
        match self {
            RhsPayload::Single(_) => 1,
            RhsPayload::Batch(cols) => cols.len(),
        }
    }

    /// Whether the payload carries no right-hand side at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn columns(&self) -> Box<dyn Iterator<Item = &Vec<f64>> + '_> {
        match self {
            RhsPayload::Single(b) => Box::new(std::iter::once(b)),
            RhsPayload::Batch(cols) => Box::new(cols.iter()),
        }
    }
}

/// A solve request submitted to the [`crate::Engine`].
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The system matrix.  Shared ownership lets many requests reference the
    /// same operator without copying it through the queue.
    pub matrix: Arc<CsrMatrix>,
    /// Right-hand side(s) to solve for.
    pub rhs: RhsPayload,
    /// Multisplitting configuration; part of the cache key, so requests that
    /// share matrix *and* configuration share one prepared system.
    pub config: MultisplittingConfig,
    /// Scheduling priority.
    pub priority: Priority,
    /// Optional deadline measured from submission: a job still queued when
    /// it elapses fails with [`EngineError::TimedOut`] instead of running.
    pub timeout: Option<Duration>,
}

impl SolveRequest {
    /// A request with the default configuration, normal priority, no timeout.
    pub fn new(matrix: Arc<CsrMatrix>, rhs: RhsPayload) -> Self {
        SolveRequest {
            matrix,
            rhs,
            config: MultisplittingConfig::default(),
            priority: Priority::Normal,
            timeout: None,
        }
    }

    /// Replaces the solve configuration.
    pub fn with_config(mut self, config: MultisplittingConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the queue deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// What a completed job produced.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// Outcome of a [`RhsPayload::Single`] request.
    Single(SolveOutcome),
    /// Outcome of a [`RhsPayload::Batch`] request.
    Batch(BatchSolveOutcome),
}

impl JobOutcome {
    /// Whether the solve converged (every column, for a batch).
    pub fn converged(&self) -> bool {
        match self {
            JobOutcome::Single(o) => o.converged,
            JobOutcome::Batch(o) => o.converged,
        }
    }

    /// Number of right-hand sides served.
    pub fn rhs_count(&self) -> usize {
        match self {
            JobOutcome::Single(_) => 1,
            JobOutcome::Batch(o) => o.num_rhs(),
        }
    }

    /// Outer iterations performed (maximum over processors).
    pub fn iterations(&self) -> u64 {
        match self {
            JobOutcome::Single(o) => o.iterations,
            JobOutcome::Batch(o) => o.iterations,
        }
    }

    /// Per-processor reports of the underlying solve.
    pub fn part_reports(&self) -> &[msplit_core::solver::PartReport] {
        match self {
            JobOutcome::Single(o) => &o.part_reports,
            JobOutcome::Batch(o) => &o.part_reports,
        }
    }

    /// The solution columns: one vector for a single solve, the batch
    /// columns otherwise.
    pub fn solutions(&self) -> Vec<&Vec<f64>> {
        match self {
            JobOutcome::Single(o) => vec![&o.x],
            JobOutcome::Batch(o) => o.columns.iter().collect(),
        }
    }
}

#[derive(Debug)]
pub(crate) enum JobState {
    Queued,
    Running,
    Finished(Result<Arc<JobOutcome>, EngineError>),
}

/// How a job reached its terminal state — selects the counters bumped
/// atomically with the state transition, so a waiter woken by `finish`
/// always observes consistent metrics.
pub(crate) enum FinishKind {
    /// Solved; carries the number of right-hand sides served.
    Completed(u64),
    Failed,
    Cancelled,
    TimedOut,
}

pub(crate) struct JobShared {
    pub(crate) state: Mutex<JobState>,
    pub(crate) done: Condvar,
    pub(crate) cancelled: AtomicBool,
    pub(crate) metrics: Arc<Metrics>,
}

impl JobShared {
    pub(crate) fn new(metrics: Arc<Metrics>) -> Arc<Self> {
        Arc::new(JobShared {
            state: Mutex::new(JobState::Queued),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
            metrics,
        })
    }

    /// Moves the job to `Finished` unless it already is, bumping the metric
    /// selected by `kind` under the state lock and waking waiters.  Returns
    /// false (and counts nothing) when the job already finished.
    pub(crate) fn finish(
        &self,
        result: Result<Arc<JobOutcome>, EngineError>,
        kind: FinishKind,
    ) -> bool {
        let mut state = self.state.lock();
        if matches!(*state, JobState::Finished(_)) {
            return false;
        }
        match kind {
            FinishKind::Completed(rhs) => {
                Metrics::add(&self.metrics.jobs_completed, 1);
                Metrics::add(&self.metrics.rhs_served, rhs);
            }
            FinishKind::Failed => Metrics::add(&self.metrics.jobs_failed, 1),
            FinishKind::Cancelled => Metrics::add(&self.metrics.jobs_cancelled, 1),
            FinishKind::TimedOut => Metrics::add(&self.metrics.jobs_timed_out, 1),
        }
        *state = JobState::Finished(result);
        drop(state);
        self.done.notify_all();
        true
    }

    /// Cancels the job iff it is still queued, atomically with the state
    /// check (a running job is left alone: the solve is not interrupted).
    pub(crate) fn cancel_queued(&self) -> bool {
        let mut state = self.state.lock();
        if !matches!(*state, JobState::Queued) {
            return false;
        }
        Metrics::add(&self.metrics.jobs_cancelled, 1);
        *state = JobState::Finished(Err(EngineError::Cancelled));
        drop(state);
        self.done.notify_all();
        true
    }

    /// Marks the job as running unless it was already finished (e.g.
    /// cancelled while queued).  Returns false if the job must be skipped.
    pub(crate) fn start(&self) -> bool {
        let mut state = self.state.lock();
        if matches!(*state, JobState::Finished(_)) {
            return false;
        }
        *state = JobState::Running;
        true
    }
}

/// Handle to a submitted job: await, poll or cancel it.
///
/// Handles are cheap to clone; all clones observe the same job.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) shared: Arc<JobShared>,
}

impl JobHandle {
    /// The engine-assigned job id (monotonically increasing per engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation.  A job still in the queue is failed with
    /// [`EngineError::Cancelled`] immediately; a job already running
    /// completes normally (the solve itself is not interrupted), and a
    /// finished job is unaffected.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
        self.shared.cancel_queued();
    }

    /// Whether the job has reached a terminal state.
    pub fn is_finished(&self) -> bool {
        matches!(*self.shared.state.lock(), JobState::Finished(_))
    }

    /// Returns the result if the job already finished, without blocking.
    pub fn try_result(&self) -> Option<Result<Arc<JobOutcome>, EngineError>> {
        match &*self.shared.state.lock() {
            JobState::Finished(r) => Some(r.clone()),
            _ => None,
        }
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(&self) -> Result<Arc<JobOutcome>, EngineError> {
        let mut state = self.shared.state.lock();
        loop {
            if let JobState::Finished(r) = &*state {
                return r.clone();
            }
            self.shared.done.wait(&mut state);
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}
