//! A persistent multisplitting solve service with factorization caching.
//!
//! The paper's whole premise (Section 2) is that the expensive direct
//! factorization of every diagonal block is performed **once** and then
//! reused by every outer iteration, which only pays cheap triangular solves.
//! A one-shot `solve(a, b)` API throws that asymmetry away: each call
//! re-decomposes and refactorizes.  This crate keeps the factorize-once
//! economics alive *across requests*, the way a long-running grid service
//! would amortize them over a family of systems sharing one operator:
//!
//! * [`MatrixKey`] — a structural + numerical fingerprint of the matrix
//!   (via [`msplit_sparse::CsrMatrix::fingerprint`]) combined with a digest
//!   of the solve configuration, identifying a prepared system exactly;
//! * [`FactorizationCache`] — an LRU of fully prepared systems
//!   ([`msplit_core::PreparedSystem`]: partition + per-block factorizations +
//!   send-target maps) with **single-flight** deduplication, so concurrent
//!   requests for the same matrix factorize exactly once;
//! * [`Engine`] — a bounded job queue plus a worker pool:
//!   [`Engine::submit`] enqueues a [`SolveRequest`] (with priority,
//!   cancellation and per-job timeout) and returns a [`JobHandle`] to await;
//!   workers dispatch onto the existing synchronous/asynchronous drivers;
//! * batched multi-RHS serving — a [`RhsPayload::Batch`] request answers all
//!   right-hand sides in a single pass of the synchronous driver
//!   ([`msplit_core::PreparedSystem::solve_many`]), one batched
//!   triangular-solve sweep and one message exchange per outer iteration;
//! * [`EngineReport`] — service metrics: cache hit rate, queue depth,
//!   factorize-vs-solve seconds, jobs and right-hand sides served.
//!
//! # Quickstart
//!
//! ```
//! use msplit_engine::{Engine, EngineConfig, RhsPayload, SolveRequest};
//! use msplit_sparse::generators;
//! use std::sync::Arc;
//!
//! let a = Arc::new(generators::diag_dominant(&generators::DiagDominantConfig {
//!     n: 200,
//!     ..Default::default()
//! }));
//! let (_, b) = generators::rhs_for_solution(&a, |i| (i % 5) as f64);
//!
//! let engine = Engine::new(EngineConfig::default());
//! let job = engine
//!     .submit(SolveRequest::new(Arc::clone(&a), RhsPayload::Single(b)))
//!     .unwrap();
//! let outcome = job.wait().unwrap();
//! assert!(outcome.converged());
//!
//! // A second request for the same matrix is a cache hit: no factorization.
//! let (_, b2) = generators::rhs_for_solution(&a, |i| (i % 7) as f64);
//! engine
//!     .submit(SolveRequest::new(Arc::clone(&a), RhsPayload::Single(b2)))
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! let report = engine.report();
//! assert_eq!(report.factorizations, 1);
//! assert_eq!(report.cache_hits, 1);
//! ```
//!
//! # Place in the runtime architecture
//!
//! In the engine/policy/adapter architecture documented at the top of
//! [`msplit_core`] (see the diagram in `crates/core/src/lib.rs`), this crate
//! sits *above* the adapters: it owns prepared systems and dispatches jobs
//! onto the threaded drivers ([`msplit_core::runtime`]), amortizing the
//! factorize-once cost across requests the same way the elastic launcher
//! amortizes it across reshapes.

pub mod cache;
pub mod engine;
pub mod job;
pub mod key;
pub mod metrics;
pub(crate) mod queue;

pub use cache::{CacheStats, FactorizationCache};
pub use engine::{Engine, EngineConfig};
pub use job::{JobHandle, JobOutcome, Priority, RhsPayload, SolveRequest};
pub use key::MatrixKey;
pub use metrics::EngineReport;

/// Errors produced by the solve service.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The bounded job queue is full (returned by [`Engine::try_submit`]).
    QueueFull,
    /// The engine is shutting down and no longer accepts or runs jobs.
    ShuttingDown,
    /// The request failed validation before being enqueued.
    InvalidRequest(String),
    /// The underlying preparation or solve failed.
    Solver(String),
    /// The job was cancelled via [`JobHandle::cancel`] before it ran.
    Cancelled,
    /// The job's deadline elapsed before a worker could start it.
    TimedOut,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::QueueFull => write!(f, "job queue is full"),
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            EngineError::Solver(msg) => write!(f, "solver error: {msg}"),
            EngineError::Cancelled => write!(f, "job was cancelled"),
            EngineError::TimedOut => write!(f, "job timed out in the queue"),
        }
    }
}

impl std::error::Error for EngineError {}
