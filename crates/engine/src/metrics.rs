//! Service metrics: counters kept by the engine and the report snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters (lock-free, updated by workers and submitters).
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_completed: AtomicU64,
    pub(crate) jobs_failed: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) jobs_timed_out: AtomicU64,
    pub(crate) rhs_served: AtomicU64,
    pub(crate) solve_micros: AtomicU64,
    pub(crate) sparse_fastpath_hits: AtomicU64,
    pub(crate) dense_fallbacks: AtomicU64,
    // Reach fractions are accumulated in parts per million so they fit the
    // same relaxed-atomic scheme as the other counters.
    pub(crate) reach_ppm_sum: AtomicU64,
    pub(crate) reach_samples: AtomicU64,
}

impl Metrics {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of the engine's service metrics, combining the
/// job counters with the factorization-cache counters.
///
/// The split between `factorize_seconds` and `solve_seconds` is the service
/// version of the paper's "factorization time" vs "execution time" columns:
/// a healthy cache drives the former toward zero while requests keep paying
/// only the latter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineReport {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs that finished with a solver outcome.
    pub jobs_completed: u64,
    /// Jobs that failed in preparation or solve.
    pub jobs_failed: u64,
    /// Jobs cancelled before running.
    pub jobs_cancelled: u64,
    /// Jobs whose queue deadline elapsed before a worker started them.
    pub jobs_timed_out: u64,
    /// Total right-hand sides served by completed jobs.
    pub rhs_served: u64,
    /// Cache hits (requests served by an already prepared system).
    pub cache_hits: u64,
    /// Cache misses (requests that claimed a preparation).
    pub cache_misses: u64,
    /// Prepared systems evicted by the LRU policy.
    pub cache_evictions: u64,
    /// Lookups that parked behind another thread's in-flight preparation.
    pub single_flight_waits: u64,
    /// Total seconds spent parked behind in-flight preparations.
    pub single_flight_wait_seconds: f64,
    /// Successful factorizations performed (with single-flight, one per
    /// distinct matrix + configuration).
    pub factorizations: u64,
    /// Prepared systems currently resident in the cache.
    pub cached_systems: usize,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Total seconds spent preparing systems (decomposition + factorization).
    pub factorize_seconds: f64,
    /// Total seconds spent in outer iterations (triangular solves + exchange).
    pub solve_seconds: f64,
    /// Outer iterations that took a sparse/incremental fast path (unchanged
    /// dependencies skipped or halo-delta triangular solves).
    pub sparse_fastpath_hits: u64,
    /// Outer iterations that assembled and solved the full local system.
    pub dense_fallbacks: u64,
    /// Mean fraction of the factor reached by sparse-path solves, in
    /// `[0, 1]` (zero when no sparse solve sampled a reach yet).
    pub mean_reach_fraction: f64,
}

impl EngineReport {
    /// Fraction of cache lookups answered without factorizing, in `[0, 1]`
    /// (zero when no lookup happened yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Completed right-hand sides per second of solve time (zero before any
    /// work was done).
    pub fn rhs_per_solve_second(&self) -> f64 {
        if self.solve_seconds <= 0.0 {
            0.0
        } else {
            self.rhs_served as f64 / self.solve_seconds
        }
    }
}

impl std::fmt::Display for EngineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} failed, {} cancelled, {} timed out",
            self.jobs_submitted,
            self.jobs_completed,
            self.jobs_failed,
            self.jobs_cancelled,
            self.jobs_timed_out
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit rate ({} hits / {} misses), {} factorizations, {} resident, {} evicted",
            100.0 * self.cache_hit_rate(),
            self.cache_hits,
            self.cache_misses,
            self.factorizations,
            self.cached_systems,
            self.cache_evictions
        )?;
        writeln!(
            f,
            "single flight: {} waits, {:.3}s parked",
            self.single_flight_waits, self.single_flight_wait_seconds
        )?;
        writeln!(
            f,
            "work: {} rhs served, queue depth {}, {:.3}s factorize vs {:.3}s solve",
            self.rhs_served, self.queue_depth, self.factorize_seconds, self.solve_seconds
        )?;
        write!(
            f,
            "solve path: {} sparse fast-path, {} dense, mean reach {:.1}%",
            self.sparse_fastpath_hits,
            self.dense_fallbacks,
            100.0 * self.mean_reach_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> EngineReport {
        EngineReport {
            jobs_submitted: 10,
            jobs_completed: 8,
            jobs_failed: 1,
            jobs_cancelled: 1,
            jobs_timed_out: 0,
            rhs_served: 40,
            cache_hits: 6,
            cache_misses: 2,
            cache_evictions: 1,
            single_flight_waits: 3,
            single_flight_wait_seconds: 0.25,
            factorizations: 2,
            cached_systems: 1,
            queue_depth: 0,
            factorize_seconds: 1.5,
            solve_seconds: 0.5,
            sparse_fastpath_hits: 30,
            dense_fallbacks: 10,
            mean_reach_fraction: 0.125,
        }
    }

    #[test]
    fn hit_rate_and_throughput() {
        let r = report();
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((r.rhs_per_solve_second() - 80.0).abs() < 1e-12);
        let empty = EngineReport {
            cache_hits: 0,
            cache_misses: 0,
            rhs_served: 0,
            solve_seconds: 0.0,
            ..report()
        };
        assert_eq!(empty.cache_hit_rate(), 0.0);
        assert_eq!(empty.rhs_per_solve_second(), 0.0);
    }

    #[test]
    fn display_mentions_the_headline_numbers() {
        let text = report().to_string();
        assert!(text.contains("75.0% hit rate"));
        assert!(text.contains("40 rhs served"));
        assert!(text.contains("2 factorizations"));
        assert!(text.contains("30 sparse fast-path"));
        assert!(text.contains("mean reach 12.5%"));
    }
}
