//! The persistent solve service: worker pool over the job queue and cache.

use crate::cache::FactorizationCache;
use crate::job::{FinishKind, JobHandle, JobOutcome, JobShared, RhsPayload, SolveRequest};
use crate::key::MatrixKey;
use crate::metrics::{EngineReport, Metrics};
use crate::queue::{Job, JobQueue};
use crate::EngineError;
use msplit_core::PreparedSystem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sizing of an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing jobs.  Each worker runs one job at a time;
    /// the multisplitting drivers themselves spawn one thread per band, so a
    /// few workers saturate a host.
    pub workers: usize,
    /// Bound of the job queue; submissions beyond it block
    /// ([`Engine::submit`]) or fail fast ([`Engine::try_submit`]).
    pub queue_capacity: usize,
    /// Maximum number of prepared systems kept by the factorization cache.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 8,
        }
    }
}

/// A long-running, multi-tenant solve service.
///
/// Submitting a [`SolveRequest`] enqueues it (bounded, prioritized) and
/// returns a [`JobHandle`].  Workers pop jobs, fetch (or single-flight
/// prepare) the [`PreparedSystem`] for the request's matrix + configuration
/// from the [`FactorizationCache`], and dispatch onto the synchronous or
/// asynchronous driver — batched in a single pass when the request carries
/// multiple right-hand sides.  Dropping the engine closes the queue, drains
/// the remaining jobs and joins the workers.
pub struct Engine {
    cache: Arc<FactorizationCache>,
    queue: Arc<JobQueue>,
    metrics: Arc<Metrics>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Starts the service with the given sizing.
    ///
    /// # Panics
    /// Panics if any sizing field is zero.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        let cache = Arc::new(FactorizationCache::new(config.cache_capacity));
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let metrics = Arc::new(Metrics::default());
        let workers = (0..config.workers)
            .map(|i| {
                let cache = Arc::clone(&cache);
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("msplit-engine-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &cache, &metrics))
                    .expect("spawning engine worker")
            })
            .collect();
        Engine {
            cache,
            queue,
            metrics,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    fn validate(request: &SolveRequest) -> Result<(), EngineError> {
        let a = &request.matrix;
        if !a.is_square() {
            return Err(EngineError::InvalidRequest(format!(
                "matrix must be square, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if request.config.parts == 0 {
            return Err(EngineError::InvalidRequest(
                "config.parts must be at least 1".to_string(),
            ));
        }
        if request.config.parts > a.rows() {
            return Err(EngineError::InvalidRequest(format!(
                "cannot split {} rows over {} parts",
                a.rows(),
                request.config.parts
            )));
        }
        for (k, col) in request.rhs.columns().enumerate() {
            if col.len() != a.rows() {
                return Err(EngineError::InvalidRequest(format!(
                    "right-hand side {k} has length {} but the matrix order is {}",
                    col.len(),
                    a.rows()
                )));
            }
        }
        Ok(())
    }

    fn make_job(&self, request: SolveRequest) -> Result<(Job, JobHandle), EngineError> {
        Self::validate(&request)?;
        let shared = JobShared::new(Arc::clone(&self.metrics));
        let handle = JobHandle {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            shared: Arc::clone(&shared),
        };
        let deadline = request.timeout.map(|t| Instant::now() + t);
        Ok((
            Job {
                request,
                shared,
                deadline,
            },
            handle,
        ))
    }

    /// Submits a job, blocking while the queue is at capacity
    /// (backpressure).
    pub fn submit(&self, request: SolveRequest) -> Result<JobHandle, EngineError> {
        let (job, handle) = self.make_job(request)?;
        // Count before the push: once the job is in the queue a worker can
        // complete it, and a report must never show completed > submitted.
        Metrics::add(&self.metrics.jobs_submitted, 1);
        if let Err(e) = self.queue.push_blocking(job) {
            self.metrics.jobs_submitted.fetch_sub(1, Ordering::Relaxed);
            return Err(e);
        }
        Ok(handle)
    }

    /// Submits a job without blocking; fails with [`EngineError::QueueFull`]
    /// when the queue is at capacity.
    pub fn try_submit(&self, request: SolveRequest) -> Result<JobHandle, EngineError> {
        let (job, handle) = self.make_job(request)?;
        Metrics::add(&self.metrics.jobs_submitted, 1);
        if let Err(e) = self.queue.try_push(job) {
            self.metrics.jobs_submitted.fetch_sub(1, Ordering::Relaxed);
            return Err(e);
        }
        Ok(handle)
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently waiting per priority lane, highest priority first
    /// (index with [`crate::Priority::lane`]).  Admission-control layers use
    /// this to bound each lane independently of the global capacity.
    pub fn lane_depths(&self) -> [usize; crate::Priority::COUNT] {
        self.queue.lane_depths()
    }

    /// The factorization cache (e.g. to inspect [`FactorizationCache::stats`]).
    pub fn cache(&self) -> &FactorizationCache {
        &self.cache
    }

    /// Snapshot of the service metrics.
    pub fn report(&self) -> EngineReport {
        let cache_stats = self.cache.stats();
        EngineReport {
            jobs_submitted: self.metrics.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.metrics.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.metrics.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: self.metrics.jobs_cancelled.load(Ordering::Relaxed),
            jobs_timed_out: self.metrics.jobs_timed_out.load(Ordering::Relaxed),
            rhs_served: self.metrics.rhs_served.load(Ordering::Relaxed),
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
            cache_evictions: cache_stats.evictions,
            single_flight_waits: cache_stats.single_flight_waits,
            single_flight_wait_seconds: cache_stats.single_flight_wait_micros as f64 / 1e6,
            factorizations: cache_stats.factorizations,
            cached_systems: self.cache.len(),
            queue_depth: self.queue.len(),
            factorize_seconds: self.cache.factorize_seconds(),
            solve_seconds: self.metrics.solve_micros.load(Ordering::Relaxed) as f64 / 1e6,
            sparse_fastpath_hits: self.metrics.sparse_fastpath_hits.load(Ordering::Relaxed),
            dense_fallbacks: self.metrics.dense_fallbacks.load(Ordering::Relaxed),
            mean_reach_fraction: {
                let samples = self.metrics.reach_samples.load(Ordering::Relaxed);
                if samples == 0 {
                    0.0
                } else {
                    self.metrics.reach_ppm_sum.load(Ordering::Relaxed) as f64 / 1e6 / samples as f64
                }
            },
        }
    }

    /// Closes the queue and joins the workers after they drain the remaining
    /// jobs.  Called automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue.len())
            .field("cache", &self.cache)
            .finish()
    }
}

fn worker_loop(queue: &JobQueue, cache: &FactorizationCache, metrics: &Metrics) {
    while let Some(job) = queue.pop() {
        run_job(job, cache, metrics);
    }
}

/// Executes one job.  A panic anywhere in preparation or solve is caught and
/// reported as [`EngineError::Solver`] — a long-running service must not let
/// one pathological request hang its handle or kill a worker thread (the
/// cache clears its own in-flight claim on a preparation panic).
fn run_job(job: Job, cache: &FactorizationCache, metrics: &Metrics) {
    // Cancelled while queued: `JobHandle::cancel` normally already finished
    // the job (then `start` refuses below); the flag covers the race where
    // cancel lands between the queue pop and the state transition.
    if job.shared.cancelled.load(Ordering::Relaxed) {
        job.shared
            .finish(Err(EngineError::Cancelled), FinishKind::Cancelled);
        return;
    }
    if let Some(deadline) = job.deadline {
        if Instant::now() >= deadline {
            job.shared
                .finish(Err(EngineError::TimedOut), FinishKind::TimedOut);
            return;
        }
    }
    if !job.shared.start() {
        // Already finished while queued (handle-side cancel counted it).
        return;
    }

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_started_job(&job, cache, metrics)
    }));
    if let Err(payload) = result {
        job.shared.finish(
            Err(EngineError::Solver(format!(
                "job panicked: {}",
                crate::cache::panic_text(&payload)
            ))),
            FinishKind::Failed,
        );
    }
}

/// Folds the per-rank solve-path counters of one completed job into the
/// service metrics (reach fractions travel as parts per million to stay in
/// the atomic-u64 scheme).
fn record_solve_paths(reports: &[msplit_core::solver::PartReport], metrics: &Metrics) {
    for report in reports {
        let sp = &report.solve_path;
        Metrics::add(&metrics.sparse_fastpath_hits, sp.sparse_fastpath_hits);
        Metrics::add(&metrics.dense_fallbacks, sp.dense_fallbacks);
        Metrics::add(
            &metrics.reach_ppm_sum,
            (sp.reach_fraction_sum * 1e6).round() as u64,
        );
        Metrics::add(&metrics.reach_samples, sp.reach_samples);
    }
}

fn execute_started_job(job: &Job, cache: &FactorizationCache, metrics: &Metrics) {
    let request = &job.request;
    let key = MatrixKey::new(&request.matrix, &request.config);
    let prepared: Result<Arc<PreparedSystem>, EngineError> = cache.get_or_prepare(key, || {
        PreparedSystem::prepare(request.config.clone(), &request.matrix)
            .map_err(|e| EngineError::Solver(e.to_string()))
    });
    let prepared = match prepared {
        Ok(p) => p,
        Err(e) => {
            job.shared.finish(Err(e), FinishKind::Failed);
            return;
        }
    };

    let solve_started = Instant::now();
    let outcome = match &request.rhs {
        RhsPayload::Single(b) => prepared.solve(b).map(JobOutcome::Single),
        RhsPayload::Batch(cols) => prepared.solve_many(cols).map(JobOutcome::Batch),
    };
    Metrics::add(
        &metrics.solve_micros,
        solve_started.elapsed().as_micros() as u64,
    );
    match outcome {
        Ok(outcome) => {
            let rhs = outcome.rhs_count() as u64;
            record_solve_paths(outcome.part_reports(), metrics);
            job.shared
                .finish(Ok(Arc::new(outcome)), FinishKind::Completed(rhs));
        }
        Err(e) => {
            job.shared
                .finish(Err(EngineError::Solver(e.to_string())), FinishKind::Failed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use msplit_core::solver::MultisplittingConfig;
    use msplit_sparse::generators::{self, DiagDominantConfig};
    use msplit_sparse::CsrMatrix;
    use std::time::Duration;

    fn matrix(n: usize, seed: u64) -> Arc<CsrMatrix> {
        Arc::new(generators::diag_dominant(&DiagDominantConfig {
            n,
            seed,
            ..Default::default()
        }))
    }

    fn small_config() -> MultisplittingConfig {
        MultisplittingConfig {
            parts: 2,
            tolerance: 1e-9,
            ..Default::default()
        }
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
    }

    #[test]
    fn single_job_round_trip_matches_direct_solve() {
        let a = matrix(150, 3);
        let (x_true, b) = generators::rhs_for_solution(&a, |i| (i % 6) as f64);
        let engine = Engine::new(EngineConfig::default());
        let handle = engine
            .submit(
                SolveRequest::new(Arc::clone(&a), RhsPayload::Single(b))
                    .with_config(small_config()),
            )
            .unwrap();
        let outcome = handle.wait().unwrap();
        assert!(outcome.converged());
        match &*outcome {
            JobOutcome::Single(o) => assert!(max_err(&o.x, &x_true) < 1e-6),
            JobOutcome::Batch(_) => panic!("expected a single outcome"),
        }
        let report = engine.report();
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.rhs_served, 1);
        assert_eq!(report.factorizations, 1);
    }

    #[test]
    fn batch_job_serves_every_rhs() {
        let a = matrix(120, 8);
        let batch: Vec<Vec<f64>> = (0..6u64)
            .map(|s| generators::rhs_for_solution(&a, |i| ((i as u64 + s) % 5) as f64).1)
            .collect();
        let engine = Engine::new(EngineConfig::default());
        let handle = engine
            .submit(
                SolveRequest::new(Arc::clone(&a), RhsPayload::Batch(batch.clone()))
                    .with_config(small_config()),
            )
            .unwrap();
        let outcome = handle.wait().unwrap();
        assert!(outcome.converged());
        assert_eq!(outcome.rhs_count(), 6);
        match &*outcome {
            JobOutcome::Batch(o) => assert!(o.max_residual(&a, &batch) < 1e-6),
            JobOutcome::Single(_) => panic!("expected a batch outcome"),
        }
        assert_eq!(engine.report().rhs_served, 6);
    }

    #[test]
    fn repeated_matrices_share_one_factorization() {
        // N submitters x M matrices flowing through the queue concurrently:
        // the cache's single flight must keep factorizations == M.
        const M: usize = 3;
        const JOBS_PER_MATRIX: usize = 8;
        let mats: Vec<Arc<CsrMatrix>> = (0..M as u64).map(|s| matrix(200, s)).collect();
        let engine = Engine::new(EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        });
        let handles: Vec<_> = (0..JOBS_PER_MATRIX)
            .flat_map(|j| {
                mats.iter().map(move |a| {
                    let (_, b) = generators::rhs_for_solution(a, move |i| ((i + j) % 7) as f64);
                    SolveRequest::new(Arc::clone(a), RhsPayload::Single(b))
                        .with_config(small_config())
                })
            })
            .map(|req| engine.submit(req).unwrap())
            .collect();
        for h in &handles {
            assert!(h.wait().unwrap().converged());
        }
        let report = engine.report();
        assert_eq!(report.jobs_completed, (M * JOBS_PER_MATRIX) as u64);
        assert_eq!(
            report.factorizations, M as u64,
            "every distinct matrix must factorize exactly once; report: {report}"
        );
        assert_eq!(
            report.cache_hits + report.cache_misses,
            report.jobs_completed
        );
        assert!(report.cache_hit_rate() > 0.5);
    }

    #[test]
    fn invalid_requests_are_rejected_at_submission() {
        let engine = Engine::new(EngineConfig::default());
        let a = matrix(50, 1);
        // RHS length mismatch.
        let bad_rhs = SolveRequest::new(Arc::clone(&a), RhsPayload::Single(vec![0.0; 49]));
        assert!(matches!(
            engine.submit(bad_rhs),
            Err(EngineError::InvalidRequest(_))
        ));
        // More parts than rows.
        let too_many_parts = SolveRequest::new(Arc::clone(&a), RhsPayload::Single(vec![0.0; 50]))
            .with_config(MultisplittingConfig {
                parts: 51,
                ..Default::default()
            });
        assert!(matches!(
            engine.submit(too_many_parts),
            Err(EngineError::InvalidRequest(_))
        ));
        assert_eq!(engine.report().jobs_submitted, 0);
    }

    #[test]
    fn singular_blocks_fail_the_job_not_the_engine() {
        // A zero row makes a diagonal block singular.
        let mut builder = msplit_sparse::TripletBuilder::square(12);
        for i in 0..12usize {
            if i != 3 {
                builder.push(i, i, 4.0).unwrap();
            }
        }
        let a = Arc::new(builder.build_csr());
        let engine = Engine::new(EngineConfig::default());
        let handle = engine
            .submit(
                SolveRequest::new(Arc::clone(&a), RhsPayload::Single(vec![1.0; 12]))
                    .with_config(small_config()),
            )
            .unwrap();
        assert!(matches!(handle.wait(), Err(EngineError::Solver(_))));
        assert_eq!(engine.report().jobs_failed, 1);
        // The engine still serves good jobs afterwards.
        let good = matrix(40, 2);
        let (_, b) = generators::rhs_for_solution(&good, |i| i as f64);
        let ok = engine
            .submit(SolveRequest::new(good, RhsPayload::Single(b)).with_config(small_config()))
            .unwrap();
        assert!(ok.wait().unwrap().converged());
    }

    /// Submits a job big enough to keep the single worker busy for a while.
    fn occupy_worker(engine: &Engine) -> crate::JobHandle {
        let a = matrix(1500, 99);
        let batch: Vec<Vec<f64>> = (0..4u64)
            .map(|s| generators::rhs_for_solution(&a, move |i| ((i as u64 + s) % 9) as f64).1)
            .collect();
        engine
            .submit(SolveRequest::new(a, RhsPayload::Batch(batch)).with_config(
                MultisplittingConfig {
                    parts: 4,
                    ..Default::default()
                },
            ))
            .unwrap()
    }

    #[test]
    fn queued_jobs_can_be_cancelled() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let busy = occupy_worker(&engine);
        let a = matrix(60, 5);
        let (_, b) = generators::rhs_for_solution(&a, |i| i as f64);
        let victim = engine
            .submit(SolveRequest::new(a, RhsPayload::Single(b)).with_config(small_config()))
            .unwrap();
        victim.cancel();
        assert!(matches!(victim.wait(), Err(EngineError::Cancelled)));
        assert!(victim.is_finished());
        // Cancelling again (or after finish) is a no-op.
        victim.cancel();
        assert!(busy.wait().unwrap().converged());
    }

    #[test]
    fn queue_deadline_times_jobs_out() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let busy = occupy_worker(&engine);
        let a = matrix(60, 6);
        let (_, b) = generators::rhs_for_solution(&a, |i| i as f64);
        let doomed = engine
            .submit(
                SolveRequest::new(a, RhsPayload::Single(b))
                    .with_config(small_config())
                    .with_timeout(Duration::ZERO),
            )
            .unwrap();
        assert!(matches!(doomed.wait(), Err(EngineError::TimedOut)));
        assert!(busy.wait().unwrap().converged());
        assert_eq!(engine.report().jobs_timed_out, 1);
    }

    #[test]
    fn try_submit_applies_backpressure() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 2,
        });
        let busy = occupy_worker(&engine);
        // One slot: first try_submit may land, the next must be rejected.
        let mut saw_full = false;
        for seed in 0..2u64 {
            let a = matrix(40, seed);
            let (_, b) = generators::rhs_for_solution(&a, |i| i as f64);
            let req = SolveRequest::new(a, RhsPayload::Single(b))
                .with_config(small_config())
                .with_priority(Priority::Low);
            if matches!(engine.try_submit(req), Err(EngineError::QueueFull)) {
                saw_full = true;
            }
        }
        assert!(saw_full, "bounded queue never reported QueueFull");
        assert!(busy.wait().unwrap().converged());
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let handles: Vec<_> = (0..6u64)
            .map(|s| {
                let a = matrix(80, s);
                let (_, b) = generators::rhs_for_solution(&a, |i| i as f64);
                engine
                    .submit(SolveRequest::new(a, RhsPayload::Single(b)).with_config(small_config()))
                    .unwrap()
            })
            .collect();
        engine.shutdown();
        for h in handles {
            assert!(h.wait().unwrap().converged());
        }
    }
}
