//! Bounded multi-priority job queue with blocking backpressure.

use crate::job::{JobShared, Priority, SolveRequest};
use crate::EngineError;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// One enqueued job: the request plus the shared completion state.
pub(crate) struct Job {
    pub(crate) request: SolveRequest,
    pub(crate) shared: Arc<JobShared>,
    /// Absolute deadline derived from the request timeout at submission.
    pub(crate) deadline: Option<Instant>,
}

struct QueueState {
    lanes: [VecDeque<Job>; Priority::COUNT],
    len: usize,
    closed: bool,
}

/// A bounded FIFO-within-priority queue.
///
/// * `push_blocking` provides backpressure: it parks the submitter until a
///   slot frees up (or the queue closes).
/// * `try_push` fails fast with [`EngineError::QueueFull`].
/// * `pop` parks workers until a job or shutdown arrives; once the queue is
///   closed, remaining jobs are still drained before `pop` returns `None`.
pub(crate) struct JobQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        JobQueue {
            capacity,
            state: Mutex::new(QueueState {
                lanes: Default::default(),
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.state.lock().len
    }

    /// Jobs waiting per priority lane, highest priority first.
    pub(crate) fn lane_depths(&self) -> [usize; Priority::COUNT] {
        let state = self.state.lock();
        std::array::from_fn(|i| state.lanes[i].len())
    }

    /// Enqueues, blocking while the queue is at capacity.
    pub(crate) fn push_blocking(&self, job: Job) -> Result<(), EngineError> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(EngineError::ShuttingDown);
            }
            if state.len < self.capacity {
                let lane = job.request.priority.lane();
                state.lanes[lane].push_back(job);
                state.len += 1;
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            self.not_full.wait(&mut state);
        }
    }

    /// Enqueues without blocking.
    pub(crate) fn try_push(&self, job: Job) -> Result<(), EngineError> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(EngineError::ShuttingDown);
        }
        if state.len >= self.capacity {
            return Err(EngineError::QueueFull);
        }
        let lane = job.request.priority.lane();
        state.lanes[lane].push_back(job);
        state.len += 1;
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest job of the highest non-empty priority lane,
    /// blocking while the queue is empty.  Returns `None` only after the
    /// queue was closed *and* fully drained.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock();
        loop {
            if state.len > 0 {
                for lane in state.lanes.iter_mut() {
                    if let Some(job) = lane.pop_front() {
                        state.len -= 1;
                        drop(state);
                        self.not_full.notify_one();
                        return Some(job);
                    }
                }
                unreachable!("len > 0 but every lane empty");
            }
            if state.closed {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// Closes the queue: no new submissions; queued jobs still drain.
    pub(crate) fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::RhsPayload;
    use msplit_sparse::generators;

    fn job(priority: Priority) -> Job {
        let a = Arc::new(generators::tridiagonal(10, 4.0, -1.0));
        Job {
            request: SolveRequest::new(a, RhsPayload::Single(vec![1.0; 10]))
                .with_priority(priority),
            shared: JobShared::new(Arc::new(crate::metrics::Metrics::default())),
            deadline: None,
        }
    }

    #[test]
    fn pop_respects_priority_then_fifo() {
        let q = JobQueue::new(8);
        q.try_push(job(Priority::Low)).unwrap();
        q.try_push(job(Priority::Normal)).unwrap();
        q.try_push(job(Priority::High)).unwrap();
        q.try_push(job(Priority::High)).unwrap();
        let order: Vec<Priority> = (0..4).map(|_| q.pop().unwrap().request.priority).collect();
        assert_eq!(
            order,
            vec![
                Priority::High,
                Priority::High,
                Priority::Normal,
                Priority::Low
            ]
        );
    }

    #[test]
    fn try_push_reports_full_and_close_drains() {
        let q = JobQueue::new(2);
        q.try_push(job(Priority::Normal)).unwrap();
        q.try_push(job(Priority::Normal)).unwrap();
        assert!(matches!(
            q.try_push(job(Priority::Normal)),
            Err(EngineError::QueueFull)
        ));
        assert_eq!(q.len(), 2);
        q.close();
        assert!(matches!(
            q.try_push(job(Priority::Normal)),
            Err(EngineError::ShuttingDown)
        ));
        // Remaining jobs drain even after close.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn blocking_push_unblocks_when_a_slot_frees() {
        let q = Arc::new(JobQueue::new(1));
        q.try_push(job(Priority::Normal)).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push_blocking(job(Priority::High)));
        // Give the pusher a moment to park, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(q.pop().is_some());
        pusher.join().unwrap().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().request.priority, Priority::High);
    }
}
