//! Compressed sparse column (CSC) matrix.
//!
//! The Gilbert–Peierls sparse LU factorization in `msplit-direct` is
//! column-oriented (it processes one column of `A` at a time and performs
//! sparse triangular solves against the partially built `L`), so it consumes
//! CSC.  The format mirrors [`crate::csr::CsrMatrix`] with rows and columns
//! exchanged.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::SparseError;
use msplit_dense::DenseMatrix;

/// A sparse matrix in compressed sparse column format.
///
/// Invariants: `col_ptr.len() == cols + 1`, row indices strictly increasing
/// within each column, no explicit zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_indices: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Creates an all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CscMatrix {
            rows,
            cols,
            col_ptr: vec![0; cols + 1],
            row_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            rows: n,
            cols: n,
            col_ptr: (0..=n).collect(),
            row_indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from raw arrays, validating invariants.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if col_ptr.len() != cols + 1 {
            return Err(SparseError::Structure(format!(
                "col_ptr length {} != cols+1 ({})",
                col_ptr.len(),
                cols + 1
            )));
        }
        if col_ptr[0] != 0 || *col_ptr.last().unwrap() != row_indices.len() {
            return Err(SparseError::Structure(
                "col_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if row_indices.len() != values.len() {
            return Err(SparseError::Structure(
                "row_indices and values lengths differ".to_string(),
            ));
        }
        for c in 0..cols {
            if col_ptr[c] > col_ptr[c + 1] {
                return Err(SparseError::Structure(format!(
                    "col_ptr not monotone at column {c}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &r in &row_indices[col_ptr[c]..col_ptr[c + 1]] {
                if r >= rows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        rows,
                        cols,
                    });
                }
                if let Some(p) = prev {
                    if r <= p {
                        return Err(SparseError::Structure(format!(
                            "row indices not strictly increasing in column {c}"
                        )));
                    }
                }
                prev = Some(r);
            }
        }
        Ok(CscMatrix {
            rows,
            cols,
            col_ptr,
            row_indices,
            values,
        })
    }

    /// Internal constructor used by [`CsrMatrix::to_csc`]: the CSR arrays of
    /// the transpose are exactly the CSC arrays of the original matrix.
    pub(crate) fn from_transposed_csr(
        rows: usize,
        cols: usize,
        col_ptr: Vec<usize>,
        row_indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        CscMatrix {
            rows,
            cols,
            col_ptr,
            row_indices,
            values,
        }
    }

    /// Converts a COO matrix (summing duplicates) into CSC.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        CsrMatrix::from_coo(coo).to_csc()
    }

    /// Converts a dense matrix into CSC.
    pub fn from_dense(a: &DenseMatrix) -> Self {
        CsrMatrix::from_dense(a).to_csc()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw column pointer array.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Raw row index array.
    pub fn row_indices(&self) -> &[usize] {
        &self.row_indices
    }

    /// Raw value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over the `(row, value)` pairs of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Entry lookup by binary search within the column.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        match self.row_indices[lo..hi].binary_search(&i) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product `y = A x` (column-oriented scatter).
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>, SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for (i, v) in self.col(j) {
                y[i] += v * xj;
            }
        }
        Ok(y)
    }

    /// Converts to CSR format.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for j in 0..self.cols {
            for (i, v) in self.col(j) {
                coo.push(i, j, v).expect("indices valid by construction");
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for (i, v) in self.col(j) {
                d.set(i, j, v);
            }
        }
        d
    }

    /// Estimated memory footprint of the stored matrix, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 0, 4.0).unwrap();
        coo.push(2, 2, 5.0).unwrap();
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn csr_to_csc_round_trip() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        assert_eq!(csc.nnz(), csr.nnz());
        assert_eq!(csc.get(0, 2), 1.0);
        assert_eq!(csc.get(2, 0), 4.0);
        assert_eq!(csc.to_csr(), csr);
    }

    #[test]
    fn col_iteration_is_sorted() {
        let csc = sample_csr().to_csc();
        let col0: Vec<_> = csc.col(0).collect();
        assert_eq!(col0, vec![(0, 2.0), (2, 4.0)]);
        assert_eq!(csc.col_nnz(1), 1);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        let x = [1.0, -2.0, 0.5];
        assert_eq!(csc.spmv(&x).unwrap(), csr.spmv(&x).unwrap());
    }

    #[test]
    fn dense_round_trip() {
        let csc = sample_csr().to_csc();
        let d = csc.to_dense();
        let back = CscMatrix::from_dense(&d);
        assert_eq!(back, csc);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let id = CscMatrix::identity(3);
        for i in 0..3 {
            assert_eq!(id.get(i, i), 1.0);
        }
        assert_eq!(id.nnz(), 3);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(CscMatrix::from_raw(2, 1, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        let csc = CscMatrix::from_coo(&coo);
        assert_eq!(csc.get(1, 0), 3.0);
        assert_eq!(csc.nnz(), 1);
    }
}
