//! Permutations of rows/columns/vectors.
//!
//! Remark 2 of the paper observes that a processor may own *non-adjacent*
//! bands of the matrix; a permutation brings that case back to the contiguous
//! band layout of Figure 1.  Fill-reducing orderings (RCM, minimum degree)
//! also produce permutations that are applied symmetrically before the
//! decomposition.

use crate::SparseError;

/// A permutation of `{0, …, n-1}`.
///
/// The convention throughout the workspace is **new-to-old**:
/// `perm[new_index] = old_index`, i.e. applying the permutation to a vector
/// computes `out[new] = input[perm[new]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of order `n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            perm: (0..n).collect(),
        }
    }

    /// Builds a permutation from a new-to-old index vector, validating that it
    /// is a bijection.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self, SparseError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            if p >= n {
                return Err(SparseError::Structure(format!(
                    "permutation entry {p} out of range 0..{n}"
                )));
            }
            if seen[p] {
                return Err(SparseError::Structure(format!(
                    "permutation entry {p} repeated"
                )));
            }
            seen[p] = true;
        }
        Ok(Permutation { perm })
    }

    /// Order of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The new-to-old index slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Old index placed at `new`.
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// Inverse permutation (old-to-new).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old] = new;
        }
        Permutation { perm: inv }
    }

    /// Applies the permutation to a vector: `out[new] = v[perm[new]]`.
    pub fn apply(&self, v: &[f64]) -> Result<Vec<f64>, SparseError> {
        if v.len() != self.perm.len() {
            return Err(SparseError::ShapeMismatch {
                expected: (self.perm.len(), 1),
                found: (v.len(), 1),
            });
        }
        Ok(self.perm.iter().map(|&old| v[old]).collect())
    }

    /// Applies the *inverse* permutation: `out[perm[new]] = v[new]`, i.e.
    /// scatters a permuted vector back to the original ordering.
    pub fn apply_inverse(&self, v: &[f64]) -> Result<Vec<f64>, SparseError> {
        if v.len() != self.perm.len() {
            return Err(SparseError::ShapeMismatch {
                expected: (self.perm.len(), 1),
                found: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; v.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            out[old] = v[new];
        }
        Ok(out)
    }

    /// Composes two permutations: `(self ∘ other)[i] = other[self[i]]`, i.e.
    /// applying the result is the same as applying `other` first and then
    /// `self` on a new-to-old basis.
    pub fn compose(&self, other: &Permutation) -> Result<Permutation, SparseError> {
        if self.len() != other.len() {
            return Err(SparseError::ShapeMismatch {
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        Ok(Permutation {
            perm: self.perm.iter().map(|&i| other.perm[i]).collect(),
        })
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// The permutation that reverses the index order (used by *reverse*
    /// Cuthill–McKee).
    pub fn reversal(n: usize) -> Self {
        Permutation {
            perm: (0..n).rev().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_reversal() {
        let id = Permutation::identity(4);
        assert!(id.is_identity());
        let rev = Permutation::reversal(4);
        assert_eq!(rev.as_slice(), &[3, 2, 1, 0]);
        assert!(!rev.is_identity());
    }

    #[test]
    fn from_vec_validates_bijection() {
        assert!(Permutation::from_vec(vec![0, 2, 1]).is_ok());
        assert!(Permutation::from_vec(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_vec(vec![0, 3]).is_err());
    }

    #[test]
    fn apply_and_inverse_round_trip() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let v = [10.0, 20.0, 30.0];
        let pv = p.apply(&v).unwrap();
        assert_eq!(pv, vec![30.0, 10.0, 20.0]);
        let back = p.apply_inverse(&pv).unwrap();
        assert_eq!(back, v.to_vec());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_vec(vec![1, 3, 0, 2]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).unwrap().is_identity() || inv.compose(&p).unwrap().is_identity());
    }

    #[test]
    fn apply_length_mismatch() {
        let p = Permutation::identity(3);
        assert!(p.apply(&[1.0, 2.0]).is_err());
        assert!(p.apply_inverse(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn old_of_accessor() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        assert_eq!(p.old_of(0), 2);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }
}
