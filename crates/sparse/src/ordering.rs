//! Fill-reducing orderings.
//!
//! Direct sparse solvers start with a symbolic step that permutes the matrix
//! to limit the fill-in created by Gaussian elimination (Remark 4 of the paper
//! — the factorization is the dominant cost of the multisplitting-direct
//! solvers, so reducing its fill matters).  Two classical orderings are
//! provided:
//!
//! * [`reverse_cuthill_mckee`] — bandwidth-reducing ordering driven by BFS
//!   from a pseudo-peripheral vertex.  Good default for the banded /
//!   discretized-PDE matrices used in the paper's experiments.
//! * [`minimum_degree`] — greedy minimum-degree ordering on the quotient
//!   graph (simplified variant without supervariable detection).  Usually
//!   lower fill for less structured patterns.

use crate::csr::CsrMatrix;
use crate::graph::AdjacencyGraph;
use crate::permutation::Permutation;

/// Reverse Cuthill–McKee ordering of the symmetrized pattern of `a`.
///
/// Returns a new-to-old permutation.  Disconnected components are each ordered
/// from their own pseudo-peripheral start vertex.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Permutation {
    let g = AdjacencyGraph::from_matrix(a);
    let n = g.order();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let start = component_pseudo_peripheral(&g, seed, &visited);
        // BFS, visiting neighbours in increasing-degree order (Cuthill–McKee).
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        visited[start] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbs: Vec<usize> = g
                .neighbours(v)
                .iter()
                .copied()
                .filter(|&w| !visited[w])
                .collect();
            nbs.sort_unstable_by_key(|&w| g.degree(w));
            for w in nbs {
                visited[w] = true;
                queue.push_back(w);
            }
        }
    }

    // Reverse the Cuthill–McKee order.
    order.reverse();
    Permutation::from_vec(order).expect("BFS order visits each vertex exactly once")
}

/// Pseudo-peripheral vertex restricted to the not-yet-visited component of
/// `seed`.
fn component_pseudo_peripheral(g: &AdjacencyGraph, seed: usize, visited: &[bool]) -> usize {
    // BFS within the unvisited component to find the farthest low-degree vertex.
    let mut best = seed;
    let mut current = vec![seed];
    let mut seen = vec![false; g.order()];
    seen[seed] = true;
    let mut last_level = vec![seed];
    while !current.is_empty() {
        last_level = current.clone();
        let mut next = Vec::new();
        for &v in &current {
            for &w in g.neighbours(v) {
                if !seen[w] && !visited[w] {
                    seen[w] = true;
                    next.push(w);
                }
            }
        }
        current = next;
    }
    if let Some(&v) = last_level.iter().min_by_key(|&&w| g.degree(w)) {
        best = v;
    }
    best
}

/// Greedy minimum-degree ordering of the symmetrized pattern of `a`.
///
/// At each step the vertex of minimum current degree is eliminated and its
/// neighbours are pairwise connected (clique formation), which mimics the
/// fill produced by Gaussian elimination.  The implementation uses explicit
/// neighbour sets; it is `O(n · d²)` in the worst case, which is fine for the
/// block sizes handed to the per-processor direct solver.
pub fn minimum_degree(a: &CsrMatrix) -> Permutation {
    let g = AdjacencyGraph::from_matrix(a);
    let n = g.order();
    let mut neighbours: Vec<std::collections::BTreeSet<usize>> = (0..n)
        .map(|v| g.neighbours(v).iter().copied().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);

    for _ in 0..n {
        // Pick the minimum-degree uneliminated vertex (ties by index for determinism).
        let v = (0..n)
            .filter(|&v| !eliminated[v])
            .min_by_key(|&v| (neighbours[v].len(), v))
            .expect("at least one vertex remains");
        eliminated[v] = true;
        order.push(v);

        // Form the elimination clique among v's remaining neighbours.
        let nbs: Vec<usize> = neighbours[v]
            .iter()
            .copied()
            .filter(|&w| !eliminated[w])
            .collect();
        for (idx, &w) in nbs.iter().enumerate() {
            neighbours[w].remove(&v);
            for &u in &nbs[idx + 1..] {
                neighbours[w].insert(u);
                neighbours[u].insert(w);
            }
        }
        neighbours[v].clear();
    }

    Permutation::from_vec(order).expect("each vertex eliminated exactly once")
}

/// Profile (sum over rows of the distance from the first nonzero to the
/// diagonal) of the symmetrized pattern — the quantity RCM tries to reduce.
pub fn envelope_profile(a: &CsrMatrix) -> usize {
    let n = a.rows();
    let mut profile = 0usize;
    for i in 0..n {
        let mut first = i;
        for (j, _) in a.row(i) {
            first = first.min(j);
        }
        // also consider the column pattern (symmetrized envelope)
        profile += i - first;
    }
    profile
}

/// Bandwidth of the matrix: maximum `|i - j|` over stored entries.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0usize;
    for (i, j, _) in a.iter() {
        bw = bw.max(i.abs_diff(j));
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TripletBuilder;
    use crate::generators;

    fn arrow_matrix(n: usize) -> CsrMatrix {
        // Arrowhead: dense first row/column + diagonal.  RCM/MD should reorder
        // the hub to the end, and minimum degree should give zero extra fill.
        let mut b = TripletBuilder::square(n);
        for i in 0..n {
            b.push(i, i, 10.0).unwrap();
            if i > 0 {
                b.push(0, i, 1.0).unwrap();
                b.push(i, 0, 1.0).unwrap();
            }
        }
        b.build_csr()
    }

    #[test]
    fn rcm_is_a_valid_permutation() {
        let a = generators::poisson_2d(6);
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), a.rows());
        // validity already checked by Permutation::from_vec; also check inverse round trip
        let v: Vec<f64> = (0..a.rows()).map(|i| i as f64).collect();
        let pv = p.apply(&v).unwrap();
        let back = p.apply_inverse(&pv).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        // A path graph whose vertices are numbered badly has large bandwidth;
        // RCM should bring it back to ~1.
        let n = 40;
        let mut b = TripletBuilder::square(n);
        // vertex i of the path is placed at position (i*17) % n (a bijection as gcd(17,40)=1)
        let pos: Vec<usize> = (0..n).map(|i| (i * 17) % n).collect();
        for i in 0..n {
            b.push(pos[i], pos[i], 4.0).unwrap();
            if i + 1 < n {
                b.push(pos[i], pos[i + 1], -1.0).unwrap();
                b.push(pos[i + 1], pos[i], -1.0).unwrap();
            }
        }
        let a = b.build_csr();
        let before = bandwidth(&a);
        let p = reverse_cuthill_mckee(&a);
        let after = bandwidth(&a.permute_symmetric(p.as_slice()).unwrap());
        assert!(
            after < before,
            "RCM should reduce bandwidth ({before} -> {after})"
        );
        assert!(
            after <= 2,
            "a path should reorder to bandwidth <= 2, got {after}"
        );
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let mut b = TripletBuilder::square(6);
        for i in 0..6 {
            b.push(i, i, 1.0).unwrap();
        }
        // two separate edges
        b.push_symmetric(0, 1, -1.0).unwrap();
        b.push_symmetric(4, 5, -1.0).unwrap();
        let a = b.build_csr();
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn minimum_degree_orders_arrowhead_hub_late() {
        let a = arrow_matrix(10);
        let p = minimum_degree(&a);
        // The hub (vertex 0, degree 9) must not be eliminated before the
        // leaves: it can only appear among the last two positions (once all
        // but one leaf are gone, the hub's degree drops to 1 and ties are
        // broken by index).
        let hub_position = (0..10).find(|&k| p.old_of(k) == 0).unwrap();
        assert!(
            hub_position >= 8,
            "hub eliminated too early: {hub_position}"
        );
        // Every earlier elimination is a leaf.
        for k in 0..hub_position {
            assert_ne!(p.old_of(k), 0);
        }
    }

    #[test]
    fn minimum_degree_is_a_valid_permutation_on_poisson() {
        let a = generators::poisson_2d(5);
        let p = minimum_degree(&a);
        assert_eq!(p.len(), 25);
    }

    #[test]
    fn profile_and_bandwidth_of_tridiagonal() {
        let a = generators::tridiagonal(10, 4.0, -1.0);
        assert_eq!(bandwidth(&a), 1);
        assert_eq!(envelope_profile(&a), 9);
    }
}
