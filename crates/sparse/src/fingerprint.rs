//! FNV-1a hashing shared by matrix fingerprints and downstream cache keys.
//!
//! [`CsrMatrix::fingerprint`](crate::CsrMatrix::fingerprint) and the
//! factorization-cache keys built on top of it must stay bit-compatible, so
//! the word-mixing kernel lives here once instead of being duplicated at
//! every call site.

/// Incremental 64-bit FNV-1a hasher over 64-bit words, mixed byte by byte
/// (little-endian) so the result is independent of host word layout.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Mixes one 64-bit word into the state.
    pub fn mix(&mut self, word: u64) {
        for shift in (0..64).step_by(8) {
            self.0 ^= (word >> shift) & 0xff;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.mix(1);
        a.mix(2);
        let mut b = Fnv64::new();
        b.mix(1);
        b.mix(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.mix(2);
        c.mix(1);
        assert_ne!(a.finish(), c.finish());
        assert_ne!(Fnv64::new().finish(), a.finish());
        assert_eq!(Fnv64::default().finish(), Fnv64::new().finish());
    }
}
