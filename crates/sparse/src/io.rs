//! MatrixMarket coordinate-format reader and writer.
//!
//! The paper's cage matrices come from the University of Florida collection
//! as MatrixMarket (`.mtx` / `.rua`-equivalent) files.  When those files are
//! available locally, [`read_matrix_market`] loads them directly so the
//! experiments can run on the genuine data instead of the synthetic
//! [`crate::generators::cage_like`] substitutes.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::SparseError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Symmetry declared in a MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle stored; `(j, i, v)` is implied by `(i, j, v)`.
    Symmetric,
    /// Only the lower triangle stored; `(j, i, -v)` is implied.
    SkewSymmetric,
}

/// Parses a MatrixMarket *coordinate real* stream into a COO matrix.
pub fn parse_matrix_market<R: Read>(reader: R) -> Result<CooMatrix, SparseError> {
    let mut lines = BufReader::new(reader).lines();

    // Header line: %%MatrixMarket matrix coordinate real <symmetry>
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(SparseError::Parse("empty MatrixMarket stream".to_string())),
        }
    };
    let header_lc = header.to_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse(format!(
            "missing %%MatrixMarket banner, found: {header}"
        )));
    }
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(SparseError::Parse(format!(
            "only 'matrix coordinate' MatrixMarket files are supported: {header}"
        )));
    }
    if tokens[3] != "real" && tokens[3] != "integer" {
        return Err(SparseError::Parse(format!(
            "only real/integer value types are supported, found {}",
            tokens[3]
        )));
    }
    let symmetry = match tokens[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported symmetry '{other}'"
            )))
        }
    };

    // Size line: first non-comment line after the header.
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => {
                return Err(SparseError::Parse(
                    "missing MatrixMarket size line".to_string(),
                ))
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| SparseError::Parse(format!("bad size entry '{t}': {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!(
            "size line must have 3 entries, found {}",
            dims.len()
        )));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    let mut coo = CooMatrix::with_capacity(rows, cols, nnz);

    let mut read_entries = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("truncated entry line: {t}")))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad row index in '{t}': {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse(format!("truncated entry line: {t}")))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad column index in '{t}': {e}")))?;
        let v: f64 = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| SparseError::Parse(format!("bad value in '{t}': {e}")))?,
            // Pattern files have no value column; treat entries as 1.0.
            None => 1.0,
        };
        if i == 0 || j == 0 {
            return Err(SparseError::Parse(
                "MatrixMarket indices are 1-based; found a 0 index".to_string(),
            ));
        }
        coo.push(i - 1, j - 1, v)?;
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if i != j {
                    coo.push(j - 1, i - 1, v)?;
                }
            }
            MmSymmetry::SkewSymmetric => {
                if i != j {
                    coo.push(j - 1, i - 1, -v)?;
                }
            }
        }
        read_entries += 1;
    }
    if read_entries != nnz {
        return Err(SparseError::Parse(format!(
            "header announced {nnz} entries but {read_entries} were read"
        )));
    }
    Ok(coo)
}

/// Reads a MatrixMarket file from disk into CSR.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<CsrMatrix, SparseError> {
    let file = std::fs::File::open(path)?;
    Ok(parse_matrix_market(file)?.to_csr())
}

/// Writes a CSR matrix as a *general coordinate real* MatrixMarket stream.
pub fn write_matrix_market<W: Write>(matrix: &CsrMatrix, mut writer: W) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        writer,
        "% written by msplit-sparse (multisplitting-direct reproduction)"
    )?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz()
    )?;
    for (i, j, v) in matrix.iter() {
        writeln!(writer, "{} {} {:.17e}", i + 1, j + 1, v)?;
    }
    Ok(())
}

/// Writes a CSR matrix to a MatrixMarket file on disk.
pub fn write_matrix_market_file(
    matrix: &CsrMatrix,
    path: impl AsRef<Path>,
) -> Result<(), SparseError> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(matrix, std::io::BufWriter::new(file))
}

/// Writes a dense vector as a plain text stream: optional `%` comment lines,
/// then one full-precision value per line.  This is the companion format the
/// distributed launcher uses to ship right-hand sides to worker processes
/// and to gather their solution slices back.
pub fn write_vector<W: Write>(values: &[f64], mut writer: W) -> Result<(), SparseError> {
    writeln!(writer, "% msplit vector, {} entries", values.len())?;
    for v in values {
        writeln!(writer, "{v:.17e}")?;
    }
    Ok(())
}

/// Writes a dense vector to a file (see [`write_vector`]).
pub fn write_vector_file(values: &[f64], path: impl AsRef<Path>) -> Result<(), SparseError> {
    let file = std::fs::File::create(path)?;
    write_vector(values, std::io::BufWriter::new(file))
}

/// Parses a vector written by [`write_vector`]; `%`-prefixed and empty lines
/// are skipped.
pub fn parse_vector<R: Read>(reader: R) -> Result<Vec<f64>, SparseError> {
    let mut values = Vec::new();
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        values.push(
            t.parse::<f64>()
                .map_err(|e| SparseError::Parse(format!("bad vector entry '{t}': {e}")))?,
        );
    }
    Ok(values)
}

/// Reads a vector file from disk (see [`write_vector`]).
pub fn read_vector_file(path: impl AsRef<Path>) -> Result<Vec<f64>, SparseError> {
    let file = std::fs::File::open(path)?;
    parse_vector(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    const SMALL_GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 2.0\n\
        2 2 3.0\n\
        3 1 -1.5\n\
        3 3 4.0\n";

    #[test]
    fn parse_general_file() {
        let coo = parse_matrix_market(SMALL_GENERAL.as_bytes()).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.get(2, 0), -1.5);
    }

    #[test]
    fn parse_symmetric_mirrors_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
            2 2 2\n\
            1 1 1.0\n\
            2 1 5.0\n";
        let csr = parse_matrix_market(text.as_bytes()).unwrap().to_csr();
        assert_eq!(csr.get(0, 1), 5.0);
        assert_eq!(csr.get(1, 0), 5.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn parse_skew_symmetric_negates_mirror() {
        let text = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
            2 2 1\n\
            2 1 3.0\n";
        let csr = parse_matrix_market(text.as_bytes()).unwrap().to_csr();
        assert_eq!(csr.get(1, 0), 3.0);
        assert_eq!(csr.get(0, 1), -3.0);
    }

    #[test]
    fn parse_rejects_bad_headers_and_counts() {
        assert!(parse_matrix_market("not a matrix\n1 1 0\n".as_bytes()).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(parse_matrix_market(wrong_count.as_bytes()).is_err());
        let zero_index = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(parse_matrix_market(zero_index.as_bytes()).is_err());
        let unsupported = "%%MatrixMarket matrix array real general\n2 2\n";
        assert!(parse_matrix_market(unsupported.as_bytes()).is_err());
    }

    #[test]
    fn write_then_read_round_trip() {
        let a = generators::cage_like(40, 11);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let back = parse_matrix_market(buf.as_slice()).unwrap().to_csr();
        assert_eq!(back.rows(), a.rows());
        assert_eq!(back.nnz(), a.nnz());
        for (i, j, v) in a.iter() {
            assert!((back.get(i, j) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn file_round_trip() {
        let a = generators::tridiagonal(15, 3.0, -1.0);
        let dir = std::env::temp_dir().join("msplit_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tri.mtx");
        write_matrix_market_file(&a, &path).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert_eq!(back, a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_matrix_market("/definitely/not/here.mtx").unwrap_err();
        assert!(matches!(err, SparseError::Io(_)));
    }

    #[test]
    fn vector_round_trip_is_exact() {
        let v: Vec<f64> = (0..50)
            .map(|i| ((i as f64) * 0.37 - 3.0) * 1e-3 + 1.0 / (i as f64 + 1.0))
            .collect();
        let mut buf = Vec::new();
        write_vector(&v, &mut buf).unwrap();
        let back = parse_vector(buf.as_slice()).unwrap();
        assert_eq!(back, v, "17-significant-digit text round-trips f64 exactly");

        let dir = std::env::temp_dir().join("msplit_sparse_vec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v.vec");
        write_vector_file(&v, &path).unwrap();
        assert_eq!(read_vector_file(&path).unwrap(), v);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vector_parse_rejects_garbage() {
        assert!(parse_vector("1.0\nnot-a-number\n".as_bytes()).is_err());
        assert_eq!(
            parse_vector("% only comments\n\n".as_bytes()).unwrap(),
            Vec::<f64>::new()
        );
    }
}
