//! Synthetic workload generators.
//!
//! The paper's experiments use two families of matrices:
//!
//! 1. the `cage10/11/12` DNA-electrophoresis matrices from the University of
//!    Florida sparse matrix collection (nonsymmetric, irreducibly diagonally
//!    dominant, a handful of nonzeros per row), and
//! 2. matrices produced by the authors' own generator of diagonally dominant
//!    matrices, one of which is tuned so that the block-Jacobi spectral radius
//!    is "close to 1" to study the effect of overlapping (Figure 3).
//!
//! The collection is not redistributable inside this repository, so
//! [`cage_like`] generates matrices with the same qualitative properties
//! (structure, dominance, nonsymmetry) at any size, and
//! [`spectral_radius_targeted`] reproduces the "ρ close to 1" regime
//! explicitly.  Real MatrixMarket files can still be used through
//! [`crate::io::read_matrix_market`].

use crate::builder::TripletBuilder;
use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tridiagonal matrix with constant diagonal `diag` and off-diagonal `off`.
pub fn tridiagonal(n: usize, diag: f64, off: f64) -> CsrMatrix {
    let mut b = TripletBuilder::square(n);
    for i in 0..n {
        b.push(i, i, diag).unwrap();
        if i > 0 {
            b.push(i, i - 1, off).unwrap();
        }
        if i + 1 < n {
            b.push(i, i + 1, off).unwrap();
        }
    }
    b.build_csr()
}

/// Standard 5-point 2-D Poisson (Laplacian) operator on a `k x k` grid.
///
/// The resulting matrix has order `k²`, is symmetric, irreducibly diagonally
/// dominant and an M-matrix — the canonical member of the "important class of
/// linear systems" of Section 5 of the paper.
pub fn poisson_2d(k: usize) -> CsrMatrix {
    let n = k * k;
    let mut b = TripletBuilder::square(n);
    let idx = |i: usize, j: usize| i * k + j;
    for i in 0..k {
        for j in 0..k {
            let row = idx(i, j);
            b.push(row, row, 4.0).unwrap();
            if i > 0 {
                b.push(row, idx(i - 1, j), -1.0).unwrap();
            }
            if i + 1 < k {
                b.push(row, idx(i + 1, j), -1.0).unwrap();
            }
            if j > 0 {
                b.push(row, idx(i, j - 1), -1.0).unwrap();
            }
            if j + 1 < k {
                b.push(row, idx(i, j + 1), -1.0).unwrap();
            }
        }
    }
    b.build_csr()
}

/// Standard 7-point 3-D Poisson operator on a `k x k x k` grid (order `k³`).
///
/// This is the discretization underlying the 3-D pollutant-transport
/// application mentioned in the paper's introduction (reference \[5\]).
pub fn poisson_3d(k: usize) -> CsrMatrix {
    let n = k * k * k;
    let mut b = TripletBuilder::square(n);
    let idx = |i: usize, j: usize, l: usize| (i * k + j) * k + l;
    for i in 0..k {
        for j in 0..k {
            for l in 0..k {
                let row = idx(i, j, l);
                b.push(row, row, 6.0).unwrap();
                if i > 0 {
                    b.push(row, idx(i - 1, j, l), -1.0).unwrap();
                }
                if i + 1 < k {
                    b.push(row, idx(i + 1, j, l), -1.0).unwrap();
                }
                if j > 0 {
                    b.push(row, idx(i, j - 1, l), -1.0).unwrap();
                }
                if j + 1 < k {
                    b.push(row, idx(i, j + 1, l), -1.0).unwrap();
                }
                if l > 0 {
                    b.push(row, idx(i, j, l - 1), -1.0).unwrap();
                }
                if l + 1 < k {
                    b.push(row, idx(i, j, l + 1), -1.0).unwrap();
                }
            }
        }
    }
    b.build_csr()
}

/// Parameters for the random diagonally dominant generator.
#[derive(Debug, Clone)]
pub struct DiagDominantConfig {
    /// Matrix order.
    pub n: usize,
    /// Number of off-diagonal entries per row (clamped to `n - 1`).
    pub offdiag_per_row: usize,
    /// Half-bandwidth within which the off-diagonal entries are placed.
    /// Keeping the entries near the diagonal mirrors the banded structure of
    /// the paper's generated matrices and keeps the band decomposition's
    /// dependency blocks small.
    pub half_bandwidth: usize,
    /// Dominance margin: the diagonal is set to
    /// `(1 + margin) * (sum of |off-diagonal|)` so that rows are strictly
    /// diagonally dominant for any `margin > 0`.
    pub dominance_margin: f64,
    /// RNG seed (generation is fully deterministic for a given config).
    pub seed: u64,
}

impl Default for DiagDominantConfig {
    fn default() -> Self {
        DiagDominantConfig {
            n: 1000,
            offdiag_per_row: 6,
            half_bandwidth: 50,
            dominance_margin: 0.1,
            seed: 0x5eed,
        }
    }
}

/// Generates a strictly diagonally dominant nonsymmetric sparse matrix.
///
/// This mirrors the authors' generator for the `500000` and `100000`
/// matrices: banded structure, a few nonzeros per row, strict dominance so
/// that Proposition 1 guarantees convergence of the multisplitting iteration.
pub fn diag_dominant(config: &DiagDominantConfig) -> CsrMatrix {
    let n = config.n;
    let k = config.offdiag_per_row.min(n.saturating_sub(1));
    let hb = config.half_bandwidth.max(1);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = TripletBuilder::square(n);
    for i in 0..n {
        let mut row_sum = 0.0;
        let mut used = std::collections::BTreeSet::new();
        used.insert(i);
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < k && attempts < 20 * k {
            attempts += 1;
            let lo = i.saturating_sub(hb);
            let hi = (i + hb).min(n - 1);
            let j = rng.gen_range(lo..=hi);
            if used.contains(&j) {
                continue;
            }
            used.insert(j);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let v = if v == 0.0 { 0.5 } else { v };
            b.push(i, j, v).unwrap();
            row_sum += v.abs();
            placed += 1;
        }
        let diag = (1.0 + config.dominance_margin) * row_sum.max(1.0);
        b.push(i, i, diag).unwrap();
    }
    b.build_csr()
}

/// Generates a "cage-like" matrix: a nonsymmetric, irreducibly diagonally
/// dominant banded matrix resembling the `cageXX` DNA-electrophoresis models
/// (roughly 8–17 nonzeros per row, positive diagonal, mixed-sign off-diagonal
/// couplings along a few regular stencils).
///
/// The cage matrices are transition matrices of a Markov chain model of DNA
/// electrophoresis: every row sums to a positive diagonal that dominates the
/// off-diagonal magnitudes.  We reproduce that dominance and the banded,
/// multi-stencil structure; the guaranteed irreducibility comes from always
/// connecting `i ↔ i+1`.
pub fn cage_like(n: usize, seed: u64) -> CsrMatrix {
    assert!(n >= 2, "cage_like requires n >= 2");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TripletBuilder::square(n);
    // A handful of fixed stencil offsets plus two long-range offsets reproduce
    // the ~8-17 nnz/row of the cage family.  The long-range offsets are capped
    // so that the bandwidth (and therefore the direct-solver fill) stays
    // bounded as n grows, keeping paper-scale instances tractable for the
    // benchmark harness.
    let long1 = (n / 13).clamp(2, 150);
    let long2 = (n / 7).clamp(3, 400);
    let offsets: [isize; 8] = [
        -1,
        1,
        -2,
        2,
        -(long1 as isize),
        long1 as isize,
        -(long2 as isize),
        long2 as isize,
    ];
    for i in 0..n {
        let mut row_sum = 0.0;
        let mut used = std::collections::BTreeSet::new();
        used.insert(i);
        for &off in &offsets {
            let j = i as isize + off;
            if j < 0 || j >= n as isize {
                continue;
            }
            let j = j as usize;
            if used.contains(&j) {
                continue;
            }
            used.insert(j);
            // Nonsymmetric: magnitude depends on direction and position.
            let magnitude: f64 = rng.gen_range(0.05..0.6);
            let sign = if rng.gen_bool(0.8) { -1.0 } else { 1.0 };
            let v = sign * magnitude;
            b.push(i, j, v).unwrap();
            row_sum += v.abs();
        }
        // Weak rows are allowed as long as at least one row is strict and the
        // matrix is irreducible; we keep every row strictly dominant with a
        // small margin, matching the measured dominance of the cage family.
        let diag = row_sum * (1.0 + rng.gen_range(0.02..0.3)) + 0.1;
        b.push(i, i, diag).unwrap();
    }
    b.build_csr()
}

/// Parameters for the convection–diffusion generator.
#[derive(Debug, Clone)]
pub struct ConvectionDiffusionConfig {
    /// Grid dimension: the matrix has order `k²`.
    pub k: usize,
    /// Cell Péclet number in `[0, 1)`.  `0` recovers the symmetric Poisson
    /// operator; any positive value makes the east/west couplings lopsided
    /// and the operator genuinely nonsymmetric, which rules out
    /// symmetric-Krylov shortcuts and is the regime the flexible (FGMRES)
    /// acceleration in the core crate's `krylov` module targets.
    pub peclet: f64,
    /// Relative amplitude of a seeded random perturbation applied to the
    /// off-diagonal couplings (`0.0` disables it).  The perturbation breaks
    /// the constant-stencil structure without touching the dominance margin,
    /// so the generated operators stay safely solvable while being less
    /// friendly to the band decomposition than a pure stencil.
    pub skew: f64,
    /// RNG seed used when `skew > 0` (generation is deterministic).
    pub seed: u64,
}

impl Default for ConvectionDiffusionConfig {
    fn default() -> Self {
        ConvectionDiffusionConfig {
            k: 32,
            peclet: 0.9,
            skew: 0.0,
            seed: 0xd1ff,
        }
    }
}

/// Upwinded 2-D convection–diffusion operator on a `k x k` grid.
///
/// The 5-point stencil is the Poisson operator with the horizontal couplings
/// biased by the cell Péclet number `p = peclet`:
///
/// ```text
/// west  = -(1 + p)      east  = -(1 - p)
/// north = -1            south = -1        diag = 4
/// ```
///
/// Every row still sums to a nonnegative value (`|west| + |east| = 2` exactly,
/// independent of `p`), so the matrix remains weakly diagonally dominant with
/// strict dominance on the boundary rows, irreducible (the grid graph is
/// connected) — hence irreducibly diagonally dominant and covered by the
/// paper's Proposition 1.
///
/// Two knobs make it a stress test for the stationary multisplitting sweep:
///
/// * **Mesh refinement (`k`)** drives the ill-conditioning.  The band
///   decomposition cuts between grid rows, and the north/south couplings
///   that cross those cuts shrink relative to the spectrum as `k` grows, so
///   the block-Jacobi spectral radius climbs toward 1 — with thin bands
///   (few grid rows per part) the stationary sweep takes hundreds to
///   thousands of iterations.
/// * **Péclet (`p`)** controls nonsymmetry.  The convection runs *along*
///   the bands, so it does not rescue the cross-band contraction (measured:
///   moderate Péclet keeps the stationary count within a small factor of
///   the Poisson worst case) while making the operator far from symmetric.
///
/// This is the workload the `perf-report` `krylov` table uses to demonstrate
/// the FGMRES outer-iteration advantage.
pub fn convection_diffusion(config: &ConvectionDiffusionConfig) -> CsrMatrix {
    let k = config.k;
    let p = config.peclet;
    assert!(k >= 2, "convection_diffusion requires k >= 2");
    assert!(
        (0.0..1.0).contains(&p),
        "peclet must lie in [0, 1), got {p}"
    );
    assert!(
        (0.0..1.0).contains(&config.skew),
        "skew must lie in [0, 1), got {}",
        config.skew
    );
    let n = k * k;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = TripletBuilder::square(n);
    let idx = |i: usize, j: usize| i * k + j;
    // Scales a coupling by a seeded factor in [1 - skew, 1].  Shrinking (never
    // growing) magnitudes preserves weak row dominance unconditionally.
    let mut perturb = |v: f64| {
        if config.skew == 0.0 {
            v
        } else {
            v * (1.0 - rng.gen_range(0.0..config.skew))
        }
    };
    for i in 0..k {
        for j in 0..k {
            let row = idx(i, j);
            b.push(row, row, 4.0).unwrap();
            if i > 0 {
                b.push(row, idx(i - 1, j), perturb(-1.0)).unwrap();
            }
            if i + 1 < k {
                b.push(row, idx(i + 1, j), perturb(-1.0)).unwrap();
            }
            if j > 0 {
                b.push(row, idx(i, j - 1), perturb(-(1.0 + p))).unwrap();
            }
            if j + 1 < k {
                b.push(row, idx(i, j + 1), perturb(-(1.0 - p))).unwrap();
            }
        }
    }
    b.build_csr()
}

/// Generates a symmetric-structure matrix whose **point-Jacobi** spectral
/// radius is (approximately) the prescribed `rho`.
///
/// Construction: start from the tridiagonal stencil `[-1, 2, -1]` whose
/// Jacobi iteration matrix has spectral radius `cos(π/(n+1))`, then scale the
/// diagonal so that the radius becomes exactly `rho` for the point-Jacobi
/// splitting: with diagonal `d` and off-diagonal `-1`, the Jacobi matrix is
/// `(1/d) * |offdiag pattern|`, whose radius is `2 cos(π/(n+1)) / d`.
///
/// Matrices with `rho` close to 1 need many block-Jacobi iterations, which is
/// exactly the regime where the overlapping study of Figure 3 is interesting.
pub fn spectral_radius_targeted(n: usize, rho: f64) -> CsrMatrix {
    assert!(n >= 2, "need n >= 2");
    assert!(rho > 0.0 && rho < 1.0, "rho must lie in (0, 1)");
    let lambda_max = 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
    let d = lambda_max / rho;
    tridiagonal(n, d, -1.0)
}

/// Random banded nonsymmetric matrix with the given half-bandwidth and
/// per-row fill probability.  Rows are *not* made diagonally dominant; this
/// generator exists to exercise pivoting and the non-convergent paths of the
/// theory module.
pub fn random_banded(n: usize, half_bandwidth: usize, fill: f64, seed: u64) -> CsrMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TripletBuilder::square(n);
    for i in 0..n {
        let lo = i.saturating_sub(half_bandwidth);
        let hi = (i + half_bandwidth).min(n - 1);
        for j in lo..=hi {
            if i == j {
                b.push(i, j, rng.gen_range(0.5..2.0)).unwrap();
            } else if rng.gen_bool(fill) {
                b.push(i, j, rng.gen_range(-1.0..1.0)).unwrap();
            }
        }
    }
    b.build_csr()
}

/// Builds a right-hand side `b = A x*` for the prescribed exact solution
/// `x*[i] = f(i)`, so tests can verify the solver reproduces `x*`.
pub fn rhs_for_solution(a: &CsrMatrix, f: impl Fn(usize) -> f64) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..a.cols()).map(f).collect();
    let b = a.spmv(&x).expect("square matrix has matching dimensions");
    (x, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn tridiagonal_shape_and_values() {
        let a = tridiagonal(5, 2.0, -1.0);
        assert_eq!(a.rows(), 5);
        assert_eq!(a.nnz(), 5 + 2 * 4);
        assert_eq!(a.get(2, 2), 2.0);
        assert_eq!(a.get(2, 3), -1.0);
    }

    #[test]
    fn poisson_2d_is_m_matrix_like() {
        let a = poisson_2d(4);
        assert_eq!(a.rows(), 16);
        assert!(properties::is_z_matrix(&a));
        assert!(properties::is_weakly_diagonally_dominant(&a));
        assert!(properties::is_irreducibly_diagonally_dominant(&a));
    }

    #[test]
    fn poisson_3d_row_counts() {
        let a = poisson_3d(3);
        assert_eq!(a.rows(), 27);
        // interior node (i = j = l = 1 on the 3x3x3 grid) has 7 entries
        let center = (3 + 1) * 3 + 1;
        assert_eq!(a.row_nnz(center), 7);
        assert!(properties::is_z_matrix(&a));
    }

    #[test]
    fn diag_dominant_is_strictly_dominant() {
        let a = diag_dominant(&DiagDominantConfig {
            n: 200,
            offdiag_per_row: 5,
            half_bandwidth: 20,
            dominance_margin: 0.2,
            seed: 42,
        });
        assert_eq!(a.rows(), 200);
        assert!(properties::is_strictly_diagonally_dominant(&a));
    }

    #[test]
    fn diag_dominant_is_deterministic() {
        let cfg = DiagDominantConfig {
            n: 50,
            seed: 7,
            ..Default::default()
        };
        assert_eq!(diag_dominant(&cfg), diag_dominant(&cfg));
    }

    #[test]
    fn cage_like_has_expected_properties() {
        let a = cage_like(300, 1);
        assert_eq!(a.rows(), 300);
        assert!(properties::is_strictly_diagonally_dominant(&a));
        assert!(crate::graph::is_irreducible(&a));
        // nnz per row in the cage-ish range (structure has up to 9 entries/row)
        let avg = a.nnz() as f64 / 300.0;
        assert!(avg > 4.0 && avg < 17.0, "avg nnz/row = {avg}");
        // nonsymmetric in values
        let t = a.transpose();
        assert_ne!(a, t);
    }

    #[test]
    fn convection_diffusion_zero_peclet_is_poisson() {
        let a = convection_diffusion(&ConvectionDiffusionConfig {
            k: 6,
            peclet: 0.0,
            skew: 0.0,
            ..Default::default()
        });
        assert_eq!(a, poisson_2d(6));
    }

    #[test]
    fn convection_diffusion_is_irreducibly_dominant_and_nonsymmetric() {
        for &peclet in &[0.3, 0.9, 0.99] {
            let a = convection_diffusion(&ConvectionDiffusionConfig {
                k: 12,
                peclet,
                skew: 0.0,
                ..Default::default()
            });
            assert_eq!(a.rows(), 144);
            assert!(properties::is_weakly_diagonally_dominant(&a));
            assert!(properties::is_irreducibly_diagonally_dominant(&a));
            assert!(crate::graph::is_irreducible(&a));
            assert_ne!(a, a.transpose(), "peclet {peclet} must break symmetry");
        }
    }

    #[test]
    fn convection_diffusion_upwind_couplings() {
        let cfg = ConvectionDiffusionConfig {
            k: 8,
            peclet: 0.75,
            skew: 0.0,
            ..Default::default()
        };
        let a = convection_diffusion(&cfg);
        // Interior row (i = j = 4): west is strengthened, east weakened.
        let row = 4 * 8 + 4;
        assert_eq!(a.get(row, row), 4.0);
        assert_eq!(a.get(row, row - 1), -1.75);
        assert_eq!(a.get(row, row + 1), -0.25);
        assert_eq!(a.get(row, row - 8), -1.0);
        assert_eq!(a.get(row, row + 8), -1.0);
    }

    #[test]
    fn convection_diffusion_skew_keeps_dominance_and_determinism() {
        let cfg = ConvectionDiffusionConfig {
            k: 10,
            peclet: 0.8,
            skew: 0.35,
            seed: 99,
        };
        let a = convection_diffusion(&cfg);
        assert!(properties::is_irreducibly_diagonally_dominant(&a));
        assert!(crate::graph::is_irreducible(&a));
        assert_eq!(a, convection_diffusion(&cfg));
        // The perturbation must actually change something.
        let unskewed = convection_diffusion(&ConvectionDiffusionConfig { skew: 0.0, ..cfg });
        assert_ne!(a, unskewed);
    }

    #[test]
    fn spectral_radius_targeted_hits_target() {
        let rho = 0.95;
        let a = spectral_radius_targeted(100, rho);
        let est = properties::jacobi_spectral_radius(&a, 2000, 1e-10);
        assert!(
            (est - rho).abs() < 0.01,
            "estimated rho {est} differs from target {rho}"
        );
    }

    #[test]
    fn random_banded_respects_bandwidth() {
        let a = random_banded(80, 3, 0.5, 9);
        for (i, j, _) in a.iter() {
            assert!(i.abs_diff(j) <= 3);
        }
    }

    #[test]
    fn rhs_for_solution_round_trip() {
        let a = tridiagonal(10, 4.0, -1.0);
        let (x, b) = rhs_for_solution(&a, |i| i as f64);
        assert_eq!(x.len(), 10);
        assert_eq!(b.len(), 10);
        // b[0] = 4*0 - 1*1 = -1
        assert_eq!(b[0], -1.0);
    }
}
