//! Sparse matrix formats, generators, orderings and structural analysis for
//! the multisplitting-direct solver stack.
//!
//! The paper solves `Ax = b` for large sparse matrices (the `cage` DNA
//! electrophoresis models from the University of Florida collection and
//! synthetically generated diagonally dominant matrices).  This crate supplies
//! everything the rest of the stack needs to describe and manipulate those
//! matrices:
//!
//! * [`CooMatrix`], [`CsrMatrix`], [`CscMatrix`] — the classical triplet,
//!   compressed-sparse-row and compressed-sparse-column formats, with
//!   conversions and arithmetic (SpMV, transpose, add, scale, sub-matrix
//!   extraction),
//! * [`generators`] — synthetic workload generators: cage-like nonsymmetric
//!   banded matrices, strictly diagonally dominant matrices, matrices with a
//!   prescribed block-Jacobi spectral radius, 2-D/3-D Poisson operators,
//! * [`ordering`] — reverse Cuthill–McKee and minimum-degree fill-reducing
//!   orderings plus permutation utilities,
//! * [`graph`] — adjacency structure helpers (BFS levels, pseudo-peripheral
//!   vertices, connected components, irreducibility test),
//! * [`properties`] — diagonal dominance, Z-matrix / M-matrix tests and the
//!   Jacobi spectral radius estimate that backs Proposition 1 of the paper,
//! * [`partition`] — the band decomposition of Figure 1 (`ASub`, `DepLeft`,
//!   `DepRight`, overlap expansion),
//! * [`io`] — MatrixMarket import/export so real collection matrices can be
//!   dropped in when available.
//!
//! # Place in the runtime architecture
//!
//! In the engine/policy/adapter architecture documented at the top of
//! `msplit-core` (`crates/core/src/lib.rs`), this crate feeds the engine
//! its inputs: [`partition`] defines the band split every rank re-derives
//! deterministically, and [`CsrMatrix::fingerprint`] is the identity that
//! pins TCP handshakes, job directories and checkpoint snapshots
//! (`docs/checkpoint-format.md`) to one exact system.

pub mod builder;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod fingerprint;
pub mod generators;
pub mod graph;
pub mod io;
pub mod ordering;
pub mod partition;
pub mod permutation;
pub mod properties;

pub use builder::TripletBuilder;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::{ColumnCache, CsrMatrix, SpmvWorkspace};
pub use partition::{BandPartition, LocalBlocks};
pub use permutation::Permutation;

/// Errors produced by sparse-matrix construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// An index is out of range for the matrix shape.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
    },
    /// Operand shapes do not match.
    ShapeMismatch {
        expected: (usize, usize),
        found: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare { rows: usize, cols: usize },
    /// Parsing a MatrixMarket file failed.
    Parse(String),
    /// I/O error wrapper for the MatrixMarket reader/writer.
    Io(String),
    /// A structural requirement (e.g. non-empty diagonal) is violated.
    Structure(String),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(f, "index ({row},{col}) out of bounds for {rows}x{cols}"),
            SparseError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "io error: {msg}"),
            SparseError::Structure(msg) => write!(f, "structural error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}
