//! Structural graph analysis of sparse matrices.
//!
//! The adjacency graph of `A` (vertices = unknowns, edges = nonzero
//! off-diagonal couplings) drives:
//!
//! * the fill-reducing orderings in [`crate::ordering`] (BFS levels and
//!   pseudo-peripheral start vertices for RCM, degree tracking for minimum
//!   degree),
//! * the irreducibility test needed by Proposition 1 of the paper
//!   ("irreducibly diagonally dominant"): `A` is irreducible iff its directed
//!   adjacency graph is strongly connected.

use crate::csr::CsrMatrix;

/// Undirected adjacency structure of the symmetrized pattern of a square
/// sparse matrix (pattern of `A + Aᵀ`, diagonal excluded).
#[derive(Debug, Clone)]
pub struct AdjacencyGraph {
    n: usize,
    adj_ptr: Vec<usize>,
    adj: Vec<usize>,
}

impl AdjacencyGraph {
    /// Builds the symmetrized adjacency graph of a square matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn from_matrix(a: &CsrMatrix) -> Self {
        assert!(a.is_square(), "adjacency graph requires a square matrix");
        let n = a.rows();
        // Collect neighbour sets from the pattern of A and Aᵀ.
        let mut neighbours: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for (j, _) in a.row(i) {
                if i != j {
                    neighbours[i].push(j);
                    neighbours[j].push(i);
                }
            }
        }
        let mut adj_ptr = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        adj_ptr.push(0);
        for nb in neighbours.iter_mut() {
            nb.sort_unstable();
            nb.dedup();
            adj.extend_from_slice(nb);
            adj_ptr.push(adj.len());
        }
        AdjacencyGraph { n, adj_ptr, adj }
    }

    /// Number of vertices.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Neighbours of vertex `v`.
    pub fn neighbours(&self, v: usize) -> &[usize] {
        &self.adj[self.adj_ptr[v]..self.adj_ptr[v + 1]]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj_ptr[v + 1] - self.adj_ptr[v]
    }

    /// Breadth-first level structure rooted at `start`.
    ///
    /// Returns `(levels, level_of)` where `levels[k]` lists the vertices at
    /// distance `k` from `start` and `level_of[v]` is the distance of `v`
    /// (or `usize::MAX` if unreachable).
    pub fn bfs_levels(&self, start: usize) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut level_of = vec![usize::MAX; self.n];
        let mut levels: Vec<Vec<usize>> = Vec::new();
        let mut current = vec![start];
        level_of[start] = 0;
        while !current.is_empty() {
            let mut next = Vec::new();
            for &v in &current {
                for &w in self.neighbours(v) {
                    if level_of[w] == usize::MAX {
                        level_of[w] = levels.len() + 1;
                        next.push(w);
                    }
                }
            }
            levels.push(current);
            current = next;
        }
        (levels, level_of)
    }

    /// Finds a pseudo-peripheral vertex starting from `start` by repeatedly
    /// moving to a minimum-degree vertex of the last BFS level (the classic
    /// George–Liu heuristic used to seed RCM).
    pub fn pseudo_peripheral(&self, start: usize) -> usize {
        let (mut levels, _) = self.bfs_levels(start);
        let mut ecc = levels.len();
        loop {
            let last = levels.last().expect("BFS from a vertex has >= 1 level");
            let candidate = *last
                .iter()
                .min_by_key(|&&w| self.degree(w))
                .expect("last level is non-empty");
            let (new_levels, _) = self.bfs_levels(candidate);
            if new_levels.len() > ecc {
                ecc = new_levels.len();
                levels = new_levels;
            } else {
                return candidate;
            }
        }
    }

    /// Connected components of the undirected graph.  Returns the component id
    /// of each vertex and the number of components.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let mut comp = vec![usize::MAX; self.n];
        let mut count = 0;
        for s in 0..self.n {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s];
            comp[s] = count;
            while let Some(v) = stack.pop() {
                for &w in self.neighbours(v) {
                    if comp[w] == usize::MAX {
                        comp[w] = count;
                        stack.push(w);
                    }
                }
            }
            count += 1;
        }
        (comp, count)
    }

    /// Whether the undirected graph is connected (every vertex reachable).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.connected_components().1 == 1
    }
}

/// Whether a square matrix is irreducible, i.e. its *directed* adjacency
/// graph is strongly connected (Tarjan's algorithm, iterative formulation).
///
/// Irreducibility combined with weak diagonal dominance plus at least one
/// strict row is the "irreducibly diagonally dominant" hypothesis of
/// Proposition 1.
pub fn is_irreducible(a: &CsrMatrix) -> bool {
    assert!(a.is_square(), "irreducibility requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return true;
    }
    if n == 1 {
        return true;
    }

    // Build directed adjacency lists (off-diagonal pattern of A).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, neighbors) in adj.iter_mut().enumerate() {
        for (j, _) in a.row(i) {
            if i != j {
                neighbors.push(j);
            }
        }
    }

    // Iterative Tarjan SCC: count the strongly connected components.
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS stack: (vertex, next child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child)) = dfs.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // Done with v: pop it, propagate the lowlink, emit an SCC if root.
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    scc_count += 1;
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        if w == v {
                            break;
                        }
                    }
                    if scc_count > 1 {
                        return false;
                    }
                }
            }
        }
    }
    scc_count == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TripletBuilder;

    fn path_matrix(n: usize) -> CsrMatrix {
        // Tridiagonal pattern: a path graph.
        let mut b = TripletBuilder::square(n);
        for i in 0..n {
            b.push(i, i, 4.0).unwrap();
            if i > 0 {
                b.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0).unwrap();
            }
        }
        b.build_csr()
    }

    #[test]
    fn adjacency_of_path() {
        let g = AdjacencyGraph::from_matrix(&path_matrix(5));
        assert_eq!(g.order(), 5);
        assert_eq!(g.neighbours(0), &[1]);
        assert_eq!(g.neighbours(2), &[1, 3]);
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    fn bfs_levels_of_path() {
        let g = AdjacencyGraph::from_matrix(&path_matrix(5));
        let (levels, level_of) = g.bfs_levels(0);
        assert_eq!(levels.len(), 5);
        assert_eq!(level_of[4], 4);
        let (levels_mid, _) = g.bfs_levels(2);
        assert_eq!(levels_mid.len(), 3);
    }

    #[test]
    fn pseudo_peripheral_finds_path_end() {
        let g = AdjacencyGraph::from_matrix(&path_matrix(9));
        let p = g.pseudo_peripheral(4);
        assert!(p == 0 || p == 8, "expected an endpoint, got {p}");
    }

    #[test]
    fn connected_components_detects_blocks() {
        // Block diagonal with two decoupled blocks.
        let mut b = TripletBuilder::square(4);
        b.push(0, 0, 1.0).unwrap();
        b.push(0, 1, 1.0).unwrap();
        b.push(1, 0, 1.0).unwrap();
        b.push(1, 1, 1.0).unwrap();
        b.push(2, 2, 1.0).unwrap();
        b.push(2, 3, 1.0).unwrap();
        b.push(3, 2, 1.0).unwrap();
        b.push(3, 3, 1.0).unwrap();
        let m = b.build_csr();
        let g = AdjacencyGraph::from_matrix(&m);
        let (comp, count) = g.connected_components();
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(!g.is_connected());
        assert!(!is_irreducible(&m));
    }

    #[test]
    fn path_is_irreducible() {
        assert!(is_irreducible(&path_matrix(6)));
    }

    #[test]
    fn one_directional_coupling_is_reducible() {
        // Upper triangular: 0 -> 1 only, not strongly connected.
        let mut b = TripletBuilder::square(2);
        b.push(0, 0, 1.0).unwrap();
        b.push(0, 1, 1.0).unwrap();
        b.push(1, 1, 1.0).unwrap();
        let m = b.build_csr();
        assert!(!is_irreducible(&m));
        // But the undirected (symmetrized) graph is connected.
        assert!(AdjacencyGraph::from_matrix(&m).is_connected());
    }

    #[test]
    fn single_vertex_is_irreducible() {
        let mut b = TripletBuilder::square(1);
        b.push(0, 0, 1.0).unwrap();
        assert!(is_irreducible(&b.build_csr()));
    }
}
