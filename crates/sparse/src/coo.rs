//! Coordinate (triplet) sparse matrix format.
//!
//! The COO format is the assembly format: generators and the MatrixMarket
//! reader produce COO, which is then converted to CSR/CSC for computation.

use crate::csr::CsrMatrix;
use crate::SparseError;

/// A sparse matrix stored as `(row, col, value)` triplets.
///
/// Duplicate entries are allowed; they are summed during conversion to
/// compressed formats, which matches the MatrixMarket convention.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_indices: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty COO matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            row_indices: Vec::new(),
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with preallocated capacity for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            row_indices: Vec::with_capacity(nnz),
            col_indices: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Builds a COO matrix directly from parallel triplet vectors.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        row_indices: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_indices.len() != col_indices.len() || row_indices.len() != values.len() {
            return Err(SparseError::Structure(format!(
                "triplet vectors have inconsistent lengths: {} / {} / {}",
                row_indices.len(),
                col_indices.len(),
                values.len()
            )));
        }
        for (&r, &c) in row_indices.iter().zip(col_indices.iter()) {
            if r >= rows || c >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        Ok(CooMatrix {
            rows,
            cols,
            row_indices,
            col_indices,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (including duplicates and explicit zeros).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Appends an entry.  Entries may repeat; they are summed on conversion.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.row_indices.push(row);
        self.col_indices.push(col);
        self.values.push(value);
        Ok(())
    }

    /// Iterates over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.row_indices
            .iter()
            .zip(self.col_indices.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate entries and dropping exact zeros
    /// that result from cancellation.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_coo(self)
    }

    /// Transposes the matrix (cheap for COO: swap the index vectors).
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            row_indices: self.col_indices.clone(),
            col_indices: self.row_indices.clone(),
            values: self.values.clone(),
        }
    }

    /// Internal accessor used by the CSR conversion.
    pub(crate) fn triplets(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_indices, &self.col_indices, &self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter() {
        let mut m = CooMatrix::new(2, 3);
        m.push(0, 0, 1.0).unwrap();
        m.push(1, 2, -2.0).unwrap();
        assert_eq!(m.nnz(), 2);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (1, 2, -2.0)]);
    }

    #[test]
    fn push_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(matches!(
            m.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            m.push(0, 5, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn from_triplets_validates() {
        assert!(CooMatrix::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]).is_err());
        assert!(CooMatrix::from_triplets(2, 2, vec![3], vec![0], vec![1.0]).is_err());
        let m = CooMatrix::from_triplets(2, 2, vec![0, 1], vec![1, 0], vec![2.0, 3.0]).unwrap();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn transpose_swaps_shape_and_indices() {
        let m = CooMatrix::from_triplets(2, 3, vec![0, 1], vec![2, 0], vec![5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries, vec![(2, 0, 5.0), (0, 1, 6.0)]);
    }

    #[test]
    fn duplicates_summed_in_csr_conversion() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 0, 2.5).unwrap();
        m.push(1, 1, 4.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.get(0, 0), 3.5);
        assert_eq!(csr.get(1, 1), 4.0);
        assert_eq!(csr.nnz(), 2);
    }
}
