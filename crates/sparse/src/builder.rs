//! Incremental triplet builder with duplicate policies.
//!
//! Generators and finite-difference assembly loops want to push entries
//! without worrying about ordering or duplicates.  `TripletBuilder` wraps a
//! [`CooMatrix`] and adds a configurable duplicate policy plus convenience
//! helpers (diagonal insertion, whole-row insertion, symmetry mirroring).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::SparseError;

/// How duplicate `(row, col)` entries pushed into the builder are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Sum all values pushed for the same position (finite-element style).
    #[default]
    Sum,
    /// Keep only the last value pushed for a position.
    Overwrite,
}

/// Incremental sparse matrix builder.
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    policy: DuplicatePolicy,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for a matrix of the given shape with the default
    /// (summing) duplicate policy.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            policy: DuplicatePolicy::Sum,
            entries: Vec::new(),
        }
    }

    /// Creates a square builder of order `n`.
    pub fn square(n: usize) -> Self {
        Self::new(n, n)
    }

    /// Sets the duplicate policy.
    pub fn with_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of entries pushed so far (before duplicate resolution).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes a single entry.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Pushes an entry and its mirror `(col, row)`, building a structurally
    /// symmetric matrix (values are mirrored as-is).
    pub fn push_symmetric(
        &mut self,
        row: usize,
        col: usize,
        value: f64,
    ) -> Result<(), SparseError> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// Pushes a whole row given `(col, value)` pairs.
    pub fn push_row(
        &mut self,
        row: usize,
        entries: impl IntoIterator<Item = (usize, f64)>,
    ) -> Result<(), SparseError> {
        for (col, value) in entries {
            self.push(row, col, value)?;
        }
        Ok(())
    }

    /// Adds `value` to every diagonal position (square matrices only).
    pub fn add_diagonal(&mut self, value: f64) -> Result<(), SparseError> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        for i in 0..self.rows {
            self.entries.push((i, i, value));
        }
        Ok(())
    }

    /// Finalizes the builder into a COO matrix, applying the duplicate policy.
    pub fn build_coo(mut self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.entries.len());
        match self.policy {
            DuplicatePolicy::Sum => {
                for (r, c, v) in self.entries {
                    coo.push(r, c, v).expect("validated on push");
                }
            }
            DuplicatePolicy::Overwrite => {
                // Stable sort keeps insertion order among equal keys; keep the
                // last pushed entry for each position.
                self.entries.sort_by_key(|&(r, c, _)| (r, c));
                let mut i = 0;
                while i < self.entries.len() {
                    let (r, c, _) = self.entries[i];
                    let mut last = self.entries[i].2;
                    let mut j = i + 1;
                    while j < self.entries.len() && self.entries[j].0 == r && self.entries[j].1 == c
                    {
                        last = self.entries[j].2;
                        j += 1;
                    }
                    coo.push(r, c, last).expect("validated on push");
                    i = j;
                }
            }
        }
        coo
    }

    /// Finalizes the builder into a CSR matrix.
    pub fn build_csr(self) -> CsrMatrix {
        self.build_coo().to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_policy_accumulates() {
        let mut b = TripletBuilder::square(2);
        b.push(0, 0, 1.0).unwrap();
        b.push(0, 0, 2.0).unwrap();
        b.push(1, 1, 5.0).unwrap();
        let m = b.build_csr();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 5.0);
    }

    #[test]
    fn overwrite_policy_keeps_last() {
        let mut b = TripletBuilder::square(2).with_policy(DuplicatePolicy::Overwrite);
        b.push(0, 0, 1.0).unwrap();
        b.push(0, 0, 7.0).unwrap();
        b.push(1, 0, 2.0).unwrap();
        let m = b.build_csr();
        assert_eq!(m.get(0, 0), 7.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn push_row_and_symmetric() {
        let mut b = TripletBuilder::square(3);
        b.push_row(0, [(0, 2.0), (1, -1.0)]).unwrap();
        b.push_symmetric(1, 2, -0.5).unwrap();
        let m = b.build_csr();
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 2), -0.5);
        assert_eq!(m.get(2, 1), -0.5);
    }

    #[test]
    fn add_diagonal_requires_square() {
        let mut rect = TripletBuilder::new(2, 3);
        assert!(rect.add_diagonal(1.0).is_err());
        let mut sq = TripletBuilder::square(3);
        sq.add_diagonal(4.0).unwrap();
        let m = sq.build_csr();
        for i in 0..3 {
            assert_eq!(m.get(i, i), 4.0);
        }
    }

    #[test]
    fn bounds_checked() {
        let mut b = TripletBuilder::new(2, 2);
        assert!(b.push(5, 0, 1.0).is_err());
        assert!(b.is_empty());
        b.push(0, 0, 1.0).unwrap();
        assert_eq!(b.len(), 1);
    }
}
