//! Structural and spectral properties backing the convergence theory.
//!
//! Section 5 of the paper identifies the classes of matrices for which the
//! multisplitting-direct algorithm provably converges:
//!
//! * strictly or irreducibly diagonally dominant matrices (Proposition 1),
//! * Z-matrices that are M-matrices (Propositions 2 and 3).
//!
//! The predicates in this module let the solver check these hypotheses before
//! launching, and [`jacobi_spectral_radius`] provides the quantitative
//! `ρ(|J|) < 1` estimate used throughout the theory module of `msplit-core`.

use crate::csr::CsrMatrix;
use crate::graph::is_irreducible;

/// Per-row diagonal dominance classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowDominance {
    /// `|a_ii| > Σ_{j≠i} |a_ij|`
    Strict,
    /// `|a_ii| = Σ_{j≠i} |a_ij|` (within a small relative tolerance)
    Weak,
    /// `|a_ii| < Σ_{j≠i} |a_ij|`
    None,
}

/// Classifies every row's diagonal dominance.
pub fn row_dominance(a: &CsrMatrix) -> Vec<RowDominance> {
    assert!(a.is_square(), "dominance requires a square matrix");
    let n = a.rows();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut diag = 0.0;
        let mut off = 0.0;
        for (j, v) in a.row(i) {
            if j == i {
                diag = v.abs();
            } else {
                off += v.abs();
            }
        }
        let tol = 1e-14 * (diag + off).max(1.0);
        out.push(if diag > off + tol {
            RowDominance::Strict
        } else if (diag - off).abs() <= tol {
            RowDominance::Weak
        } else {
            RowDominance::None
        });
    }
    out
}

/// `|a_ii| > Σ_{j≠i} |a_ij|` for every row.
pub fn is_strictly_diagonally_dominant(a: &CsrMatrix) -> bool {
    row_dominance(a)
        .into_iter()
        .all(|d| d == RowDominance::Strict)
}

/// `|a_ii| ≥ Σ_{j≠i} |a_ij|` for every row.
pub fn is_weakly_diagonally_dominant(a: &CsrMatrix) -> bool {
    row_dominance(a)
        .into_iter()
        .all(|d| d != RowDominance::None)
}

/// Irreducibly diagonally dominant: the matrix is irreducible, every row is
/// weakly dominant, and at least one row is strictly dominant.  Together with
/// strict dominance this is the hypothesis of Proposition 1.
pub fn is_irreducibly_diagonally_dominant(a: &CsrMatrix) -> bool {
    let dom = row_dominance(a);
    if dom.contains(&RowDominance::None) {
        return false;
    }
    if !dom.contains(&RowDominance::Strict) {
        return false;
    }
    is_irreducible(a)
}

/// Whether `A` is a Z-matrix: all off-diagonal entries are `<= 0`.
pub fn is_z_matrix(a: &CsrMatrix) -> bool {
    assert!(a.is_square(), "Z-matrix test requires a square matrix");
    a.iter().all(|(i, j, v)| i == j || v <= 0.0)
}

/// Whether the diagonal of `A` is strictly positive (a prerequisite for the
/// Jacobi splitting and for the M-matrix tests).
pub fn has_positive_diagonal(a: &CsrMatrix) -> bool {
    assert!(a.is_square(), "diagonal test requires a square matrix");
    a.diagonal().into_iter().all(|d| d > 0.0)
}

/// Estimates the spectral radius of the **point-Jacobi iteration matrix**
/// `J = D⁻¹ (D - A)` in absolute value, i.e. `ρ(|J|)`, by power iteration on
/// the nonnegative matrix `|J|`.
///
/// For nonnegative matrices the power method converges to the Perron root,
/// which is exactly the quantity appearing in the asynchronous convergence
/// condition.  `ρ(|J|) < 1` also implies `ρ(J) < 1`, so this single estimate
/// certifies both modes (Theorem 1 of the paper).
///
/// Returns `f64::INFINITY` when a diagonal entry is zero.
pub fn jacobi_spectral_radius(a: &CsrMatrix, max_iters: usize, tol: f64) -> f64 {
    assert!(a.is_square(), "spectral radius requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return 0.0;
    }
    let diag = a.diagonal();
    if diag.contains(&0.0) {
        return f64::INFINITY;
    }

    // Power iteration on |J| x = |D^{-1}(D - A)| x computed row-wise without
    // forming J explicitly.  The eigenvalue estimate is the Rayleigh quotient
    // xᵀ|J|x / xᵀx, which converges faster and more smoothly than the norm
    // ratio (the norm ratio can stagnate for many iterations on banded
    // matrices because boundary effects propagate one row per step).
    let mut x = vec![1.0f64; n];
    let mut radius = 0.0f64;
    for _ in 0..max_iters {
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut acc = 0.0;
            for (j, v) in a.row(i) {
                if j != i {
                    acc += (v / diag[i]).abs() * x[j];
                }
            }
            y[i] = acc;
        }
        let xx: f64 = x.iter().map(|v| v * v).sum();
        let xy: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        if xy == 0.0 {
            return 0.0;
        }
        let estimate = xy / xx;
        let y_norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if y_norm == 0.0 {
            return 0.0;
        }
        for v in &mut y {
            *v /= y_norm;
        }
        let delta = (estimate - radius).abs();
        radius = estimate;
        x = y;
        if delta < tol * radius.max(1.0) {
            break;
        }
    }
    radius
}

/// Summary report of the convergence-relevant properties of a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProperties {
    /// Matrix order.
    pub n: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Strictly diagonally dominant (Proposition 1, strict case).
    pub strictly_dominant: bool,
    /// Irreducibly diagonally dominant (Proposition 1, irreducible case).
    pub irreducibly_dominant: bool,
    /// Z-matrix (all off-diagonal entries non-positive).
    pub z_matrix: bool,
    /// Positive diagonal.
    pub positive_diagonal: bool,
    /// Estimated point-Jacobi spectral radius ρ(|J|).
    pub jacobi_radius: f64,
}

impl MatrixProperties {
    /// Computes the full property report for a matrix.
    pub fn analyze(a: &CsrMatrix) -> Self {
        MatrixProperties {
            n: a.rows(),
            nnz: a.nnz(),
            strictly_dominant: is_strictly_diagonally_dominant(a),
            irreducibly_dominant: is_irreducibly_diagonally_dominant(a),
            z_matrix: is_z_matrix(a),
            positive_diagonal: has_positive_diagonal(a),
            jacobi_radius: jacobi_spectral_radius(a, 500, 1e-10),
        }
    }

    /// Whether Proposition 1 (diagonal dominance) guarantees convergence of
    /// the multisplitting-direct algorithm for this matrix.
    pub fn satisfies_proposition_1(&self) -> bool {
        self.strictly_dominant || self.irreducibly_dominant
    }

    /// Whether the M-matrix route (Propositions 2–3) guarantees convergence:
    /// Z-matrix with `ρ(|J|) < 1` (which for a Z-matrix with positive diagonal
    /// is equivalent to being a nonsingular M-matrix).
    pub fn satisfies_m_matrix_conditions(&self) -> bool {
        self.z_matrix && self.positive_diagonal && self.jacobi_radius < 1.0
    }

    /// Whether any of the paper's sufficient conditions hold.
    pub fn convergence_guaranteed(&self) -> bool {
        self.satisfies_proposition_1() || self.satisfies_m_matrix_conditions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TripletBuilder;
    use crate::generators;

    #[test]
    fn dominance_classification() {
        let mut b = TripletBuilder::square(3);
        // row 0: strict (3 > 1), row 1: weak (2 = 2), row 2: none (1 < 2)
        b.push_row(0, [(0, 3.0), (1, -1.0)]).unwrap();
        b.push_row(1, [(0, 1.0), (1, 2.0), (2, -1.0)]).unwrap();
        b.push_row(2, [(1, 2.0), (2, 1.0)]).unwrap();
        let a = b.build_csr();
        let dom = row_dominance(&a);
        assert_eq!(
            dom,
            vec![RowDominance::Strict, RowDominance::Weak, RowDominance::None]
        );
        assert!(!is_strictly_diagonally_dominant(&a));
        assert!(!is_weakly_diagonally_dominant(&a));
    }

    #[test]
    fn poisson_is_irreducibly_but_not_strictly_dominant() {
        let a = generators::poisson_2d(4);
        assert!(!is_strictly_diagonally_dominant(&a));
        assert!(is_weakly_diagonally_dominant(&a));
        assert!(is_irreducibly_diagonally_dominant(&a));
    }

    #[test]
    fn z_matrix_and_positive_diagonal() {
        let a = generators::poisson_2d(3);
        assert!(is_z_matrix(&a));
        assert!(has_positive_diagonal(&a));
        let b = generators::cage_like(50, 3);
        // cage-like has some positive off-diagonal entries
        assert!(!is_z_matrix(&b));
        assert!(has_positive_diagonal(&b));
    }

    #[test]
    fn jacobi_radius_of_known_tridiagonal() {
        // For the [-1, 2, -1] tridiagonal of order n, rho(J) = cos(pi/(n+1)).
        let n = 50;
        let a = generators::tridiagonal(n, 2.0, -1.0);
        let expected = (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let est = jacobi_spectral_radius(&a, 5000, 1e-12);
        assert!(
            (est - expected).abs() < 1e-3,
            "estimate {est} vs expected {expected}"
        );
    }

    #[test]
    fn jacobi_radius_small_for_strongly_dominant() {
        let a = generators::tridiagonal(30, 10.0, -1.0);
        let est = jacobi_spectral_radius(&a, 1000, 1e-10);
        assert!(est < 0.3);
    }

    #[test]
    fn jacobi_radius_infinite_for_zero_diagonal() {
        let mut b = TripletBuilder::square(2);
        b.push(0, 1, 1.0).unwrap();
        b.push(1, 0, 1.0).unwrap();
        b.push(1, 1, 1.0).unwrap();
        let a = b.build_csr();
        assert!(jacobi_spectral_radius(&a, 100, 1e-8).is_infinite());
    }

    #[test]
    fn analyze_reports_convergence_guarantee() {
        let dd = generators::diag_dominant(&generators::DiagDominantConfig {
            n: 100,
            seed: 5,
            ..Default::default()
        });
        let p = MatrixProperties::analyze(&dd);
        assert!(p.strictly_dominant);
        assert!(p.satisfies_proposition_1());
        assert!(p.convergence_guaranteed());

        let poisson = generators::poisson_2d(5);
        let p2 = MatrixProperties::analyze(&poisson);
        assert!(p2.z_matrix);
        assert!(p2.satisfies_m_matrix_conditions() || p2.satisfies_proposition_1());

        // A clearly non-dominant, non-Z matrix should not be certified.
        let mut b = TripletBuilder::square(2);
        b.push_row(0, [(0, 1.0), (1, 5.0)]).unwrap();
        b.push_row(1, [(0, 5.0), (1, 1.0)]).unwrap();
        let bad = b.build_csr();
        let p3 = MatrixProperties::analyze(&bad);
        assert!(!p3.convergence_guaranteed());
    }

    #[test]
    fn m_matrix_condition_for_rho_targeted_matrix() {
        let a = generators::spectral_radius_targeted(60, 0.9);
        let p = MatrixProperties::analyze(&a);
        assert!(p.z_matrix);
        assert!(p.jacobi_radius < 1.0);
        assert!(p.satisfies_m_matrix_conditions());
    }
}
