//! Band decomposition of the linear system (Figure 1 of the paper).
//!
//! The matrix `A` is split into `L` horizontal bands.  Band `l` owns the
//! rows in `J_l` (a contiguous index range here; Remark 2 covers the
//! non-adjacent case via a prior permutation).  Within its band, the columns
//! matching `J_l` form the square diagonal block `ASub`; the columns before
//! it are the *left dependencies* `DepLeft` and the columns after it the
//! *right dependencies* `DepRight`.  Each multisplitting iteration computes
//!
//! ```text
//! BLoc = BSub − DepLeft · XLeft − DepRight · XRight
//! XSub = DirectSolve(ASub, BLoc)
//! ```
//!
//! The ranges may overlap (`J_l ∩ J_{l+1} ≠ ∅`), which yields the discrete
//! Schwarz variants of Section 4; the overlap size is the parameter studied
//! in Figure 3.

use crate::csr::CsrMatrix;
use crate::SparseError;

/// A partition of `{0, …, n-1}` into `L` contiguous, possibly overlapping
/// bands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandPartition {
    n: usize,
    /// Half-open owned (non-overlapping) ranges, covering `0..n` exactly.
    owned: Vec<(usize, usize)>,
    /// Half-open extended ranges including the overlap on both sides.
    extended: Vec<(usize, usize)>,
    /// Overlap requested (in rows, on each side where a neighbour exists).
    overlap: usize,
}

impl BandPartition {
    /// Splits `0..n` into `parts` contiguous bands of (nearly) equal size with
    /// no overlap.
    pub fn uniform(n: usize, parts: usize) -> Result<Self, SparseError> {
        Self::uniform_with_overlap(n, parts, 0)
    }

    /// Splits `0..n` into `parts` bands of (nearly) equal size, then extends
    /// each band by `overlap` rows into each existing neighbour.
    pub fn uniform_with_overlap(
        n: usize,
        parts: usize,
        overlap: usize,
    ) -> Result<Self, SparseError> {
        if parts == 0 {
            return Err(SparseError::Structure(
                "partition must have at least one part".to_string(),
            ));
        }
        if parts > n {
            return Err(SparseError::Structure(format!(
                "cannot split {n} rows into {parts} non-empty parts"
            )));
        }
        let base = n / parts;
        let rem = n % parts;
        let mut owned = Vec::with_capacity(parts);
        let mut start = 0usize;
        for l in 0..parts {
            let size = base + usize::from(l < rem);
            owned.push((start, start + size));
            start += size;
        }
        Self::from_owned_ranges(n, owned, overlap)
    }

    /// Builds a partition from explicit owned band sizes (useful for
    /// heterogeneity-aware load balancing: faster machines get larger bands).
    pub fn from_sizes(sizes: &[usize], overlap: usize) -> Result<Self, SparseError> {
        if sizes.is_empty() || sizes.contains(&0) {
            return Err(SparseError::Structure(
                "band sizes must be non-empty and positive".to_string(),
            ));
        }
        let n: usize = sizes.iter().sum();
        let mut owned = Vec::with_capacity(sizes.len());
        let mut start = 0usize;
        for &s in sizes {
            owned.push((start, start + s));
            start += s;
        }
        Self::from_owned_ranges(n, owned, overlap)
    }

    fn from_owned_ranges(
        n: usize,
        owned: Vec<(usize, usize)>,
        overlap: usize,
    ) -> Result<Self, SparseError> {
        let parts = owned.len();
        let mut extended = Vec::with_capacity(parts);
        for (l, &(s, e)) in owned.iter().enumerate() {
            let ext_start = if l == 0 { s } else { s.saturating_sub(overlap) };
            let ext_end = if l + 1 == parts {
                e
            } else {
                (e + overlap).min(n)
            };
            if ext_start >= ext_end {
                return Err(SparseError::Structure(format!(
                    "band {l} became empty after overlap expansion"
                )));
            }
            extended.push((ext_start, ext_end));
        }
        Ok(BandPartition {
            n,
            owned,
            extended,
            overlap,
        })
    }

    /// Total number of unknowns.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of bands `L`.
    pub fn num_parts(&self) -> usize {
        self.owned.len()
    }

    /// Overlap requested at construction.
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// The owned (exclusive) range of band `l`; owned ranges tile `0..n`.
    pub fn owned_range(&self, l: usize) -> std::ops::Range<usize> {
        let (s, e) = self.owned[l];
        s..e
    }

    /// The extended range of band `l` including overlap (this is `J_l`).
    pub fn extended_range(&self, l: usize) -> std::ops::Range<usize> {
        let (s, e) = self.extended[l];
        s..e
    }

    /// Size of the extended band `l` (the order of its `ASub`).
    pub fn part_size(&self, l: usize) -> usize {
        let (s, e) = self.extended[l];
        e - s
    }

    /// The band that *owns* global index `i`.
    pub fn owner_of(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        // owned ranges are sorted and tile 0..n; binary search on start.
        match self.owned.binary_search_by(|&(s, e)| {
            if i < s {
                std::cmp::Ordering::Greater
            } else if i >= e {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(l) => l,
            Err(_) => unreachable!("owned ranges tile 0..n"),
        }
    }

    /// All bands whose *extended* range contains global index `i` (more than
    /// one in the overlapping case).
    pub fn parts_containing(&self, i: usize) -> Vec<usize> {
        (0..self.num_parts())
            .filter(|&l| self.extended_range(l).contains(&i))
            .collect()
    }

    /// Whether band `k`'s solution is needed by band `l` (i.e. band `k`'s
    /// extended range intersects the column dependencies of band `l`).  With
    /// contiguous bands, every band depends on every *other* band whose owned
    /// range intersects the complement of `J_l`; in practice only structural
    /// neighbours matter, which [`LocalBlocks::dependency_parts`] reports
    /// exactly from the sparsity pattern.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.num_parts()).map(move |l| self.extended_range(l))
    }
}

/// The per-band blocks of Figure 1: everything processor `l` needs to run
/// Algorithm 1 locally.
#[derive(Debug, Clone)]
pub struct LocalBlocks {
    /// Index of this band.
    pub part: usize,
    /// First global row of the extended band (the paper's `Offset`).
    pub offset: usize,
    /// Order of `ASub` (the paper's `SizeSub`).
    pub size: usize,
    /// Total system order (the paper's `Size`).
    pub total_size: usize,
    /// The square diagonal block `ASub`.
    pub a_sub: CsrMatrix,
    /// Left dependency block (`size × offset`).
    pub dep_left: CsrMatrix,
    /// Right dependency block (`size × (total_size - offset - size)`).
    pub dep_right: CsrMatrix,
    /// The band's slice of the right-hand side, `BSub`.
    pub b_sub: Vec<f64>,
}

impl LocalBlocks {
    /// Extracts the blocks of band `l` from the global system `(a, b)`.
    pub fn extract(
        a: &CsrMatrix,
        b: &[f64],
        partition: &BandPartition,
        l: usize,
    ) -> Result<Self, SparseError> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.rows() != partition.order() {
            return Err(SparseError::ShapeMismatch {
                expected: (partition.order(), partition.order()),
                found: (a.rows(), a.cols()),
            });
        }
        if b.len() != a.rows() {
            return Err(SparseError::ShapeMismatch {
                expected: (a.rows(), 1),
                found: (b.len(), 1),
            });
        }
        let range = partition.extended_range(l);
        let (offset, end) = (range.start, range.end);
        let size = end - offset;
        let n = a.rows();
        let a_sub = a.sub_matrix(offset, end, offset, end);
        let dep_left = a.sub_matrix(offset, end, 0, offset);
        let dep_right = a.sub_matrix(offset, end, end, n);
        let b_sub = b[offset..end].to_vec();
        Ok(LocalBlocks {
            part: l,
            offset,
            size,
            total_size: n,
            a_sub,
            dep_left,
            dep_right,
            b_sub,
        })
    }

    /// Computes the local right-hand side
    /// `BLoc = BSub − DepLeft · XLeft − DepRight · XRight`
    /// from the *global* solution vector.
    pub fn local_rhs(&self, x_global: &[f64]) -> Result<Vec<f64>, SparseError> {
        self.local_rhs_with(&self.b_sub, x_global)
    }

    /// Like [`LocalBlocks::local_rhs`], but with a caller-supplied `BSub`
    /// replacing the slice captured at extraction time.  This is what lets a
    /// prepared decomposition (blocks + factorizations) be reused across many
    /// right-hand sides: only the `b_sub` slice changes between solves.
    pub fn local_rhs_with(&self, b_sub: &[f64], x_global: &[f64]) -> Result<Vec<f64>, SparseError> {
        let mut rhs = Vec::new();
        self.local_rhs_into(b_sub, x_global, &mut rhs)?;
        Ok(rhs)
    }

    /// Allocation-free form of [`LocalBlocks::local_rhs_with`]: writes
    /// `BLoc = BSub − DepLeft · XLeft − DepRight · XRight` into `out`,
    /// reusing its capacity.  This is the per-iteration kernel of the
    /// multisplitting drivers — with a caller-retained `out` buffer the
    /// steady-state iteration performs no heap allocation here.
    pub fn local_rhs_into(
        &self,
        b_sub: &[f64],
        x_global: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), SparseError> {
        if b_sub.len() != self.size {
            return Err(SparseError::ShapeMismatch {
                expected: (self.size, 1),
                found: (b_sub.len(), 1),
            });
        }
        if x_global.len() != self.total_size {
            return Err(SparseError::ShapeMismatch {
                expected: (self.total_size, 1),
                found: (x_global.len(), 1),
            });
        }
        out.clear();
        out.extend_from_slice(b_sub);
        let x_left = &x_global[..self.offset];
        let x_right = &x_global[self.offset + self.size..];
        if self.offset > 0 {
            self.dep_left.spmv_sub_into(x_left, out)?;
        }
        if !x_right.is_empty() {
            self.dep_right.spmv_sub_into(x_right, out)?;
        }
        Ok(())
    }

    /// Computes `BLoc` from separately supplied left and right dependency
    /// vectors (the form in which the drivers hold them).
    pub fn local_rhs_from_parts(
        &self,
        x_left: &[f64],
        x_right: &[f64],
    ) -> Result<Vec<f64>, SparseError> {
        if x_left.len() != self.offset {
            return Err(SparseError::ShapeMismatch {
                expected: (self.offset, 1),
                found: (x_left.len(), 1),
            });
        }
        let right_len = self.total_size - self.offset - self.size;
        if x_right.len() != right_len {
            return Err(SparseError::ShapeMismatch {
                expected: (right_len, 1),
                found: (x_right.len(), 1),
            });
        }
        let mut rhs = self.b_sub.clone();
        if self.offset > 0 {
            self.dep_left.spmv_sub_into(x_left, &mut rhs)?;
        }
        if right_len > 0 {
            self.dep_right.spmv_sub_into(x_right, &mut rhs)?;
        }
        Ok(rhs)
    }

    /// The global column indices on which this band actually depends
    /// (nonzero columns of `DepLeft` and `DepRight`).
    pub fn dependency_columns(&self) -> Vec<usize> {
        let mut cols = std::collections::BTreeSet::new();
        for (_, j, _) in self.dep_left.iter() {
            cols.insert(j);
        }
        let right_base = self.offset + self.size;
        for (_, j, _) in self.dep_right.iter() {
            cols.insert(right_base + j);
        }
        cols.into_iter().collect()
    }

    /// The set of bands this band depends on, according to the sparsity
    /// pattern and the given partition (this is the structural counterpart of
    /// the `DependsOnMe` array of Algorithm 1, seen from the receiving side).
    pub fn dependency_parts(&self, partition: &BandPartition) -> Vec<usize> {
        let mut parts = std::collections::BTreeSet::new();
        for col in self.dependency_columns() {
            parts.insert(partition.owner_of(col));
        }
        parts.remove(&self.part);
        parts.into_iter().collect()
    }

    /// Estimated memory footprint of the stored blocks, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.a_sub.memory_bytes()
            + self.dep_left.memory_bytes()
            + self.dep_right.memory_bytes()
            + self.b_sub.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_partition_tiles_range() {
        let p = BandPartition::uniform(10, 3).unwrap();
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.owned_range(0), 0..4);
        assert_eq!(p.owned_range(1), 4..7);
        assert_eq!(p.owned_range(2), 7..10);
        assert_eq!(p.extended_range(1), 4..7);
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(p.owner_of(6), 1);
        assert_eq!(p.owner_of(9), 2);
    }

    #[test]
    fn overlap_expands_interior_bands() {
        let p = BandPartition::uniform_with_overlap(12, 3, 2).unwrap();
        assert_eq!(p.owned_range(1), 4..8);
        assert_eq!(p.extended_range(0), 0..6);
        assert_eq!(p.extended_range(1), 2..10);
        assert_eq!(p.extended_range(2), 6..12);
        assert_eq!(p.part_size(1), 8);
        assert_eq!(p.parts_containing(5), vec![0, 1]);
        assert_eq!(p.overlap(), 2);
    }

    #[test]
    fn invalid_partitions_rejected() {
        assert!(BandPartition::uniform(5, 0).is_err());
        assert!(BandPartition::uniform(3, 5).is_err());
        assert!(BandPartition::from_sizes(&[2, 0, 3], 0).is_err());
        assert!(BandPartition::from_sizes(&[], 0).is_err());
    }

    #[test]
    fn from_sizes_respects_given_sizes() {
        let p = BandPartition::from_sizes(&[3, 5, 2], 0).unwrap();
        assert_eq!(p.order(), 10);
        assert_eq!(p.owned_range(1), 3..8);
        assert_eq!(p.part_size(2), 2);
    }

    #[test]
    fn local_blocks_shapes() {
        let a = generators::tridiagonal(10, 4.0, -1.0);
        let b = vec![1.0; 10];
        let p = BandPartition::uniform(10, 3).unwrap();
        let blocks = LocalBlocks::extract(&a, &b, &p, 1).unwrap();
        assert_eq!(blocks.offset, 4);
        assert_eq!(blocks.size, 3);
        assert_eq!(blocks.a_sub.rows(), 3);
        assert_eq!(blocks.a_sub.cols(), 3);
        assert_eq!(blocks.dep_left.cols(), 4);
        assert_eq!(blocks.dep_right.cols(), 3);
        assert_eq!(blocks.b_sub, vec![1.0; 3]);
    }

    #[test]
    fn blocks_reassemble_row_band() {
        // ASub, DepLeft and DepRight must exactly tile the band's rows.
        let a = generators::cage_like(60, 5);
        let b = vec![0.5; 60];
        let p = BandPartition::uniform(60, 4).unwrap();
        for l in 0..4 {
            let blocks = LocalBlocks::extract(&a, &b, &p, l).unwrap();
            let band_nnz: usize = p.extended_range(l).map(|i| a.row_nnz(i)).sum();
            assert_eq!(
                blocks.a_sub.nnz() + blocks.dep_left.nnz() + blocks.dep_right.nnz(),
                band_nnz
            );
        }
    }

    #[test]
    fn local_rhs_matches_global_residual_identity() {
        // For the exact solution x*, BLoc equals ASub * XSub*, because
        // b = A x* and the band rows split as DepLeft·XLeft + ASub·XSub + DepRight·XRight.
        let a = generators::diag_dominant(&generators::DiagDominantConfig {
            n: 40,
            seed: 2,
            ..Default::default()
        });
        let (x_true, b) = generators::rhs_for_solution(&a, |i| (i as f64 * 0.1).cos());
        let p = BandPartition::uniform(40, 4).unwrap();
        for l in 0..4 {
            let blocks = LocalBlocks::extract(&a, &b, &p, l).unwrap();
            let rhs = blocks.local_rhs(&x_true).unwrap();
            let xs = &x_true[blocks.offset..blocks.offset + blocks.size];
            let asub_x = blocks.a_sub.spmv(xs).unwrap();
            for (r, ax) in rhs.iter().zip(asub_x.iter()) {
                assert!((r - ax).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn local_rhs_from_parts_agrees_with_global_form() {
        let a = generators::cage_like(30, 9);
        let b: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let x: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let p = BandPartition::uniform_with_overlap(30, 3, 2).unwrap();
        for l in 0..3 {
            let blocks = LocalBlocks::extract(&a, &b, &p, l).unwrap();
            let full = blocks.local_rhs(&x).unwrap();
            let left = &x[..blocks.offset];
            let right = &x[blocks.offset + blocks.size..];
            let parts = blocks.local_rhs_from_parts(left, right).unwrap();
            assert_eq!(full, parts);
        }
    }

    #[test]
    fn local_rhs_into_matches_local_rhs_with_and_reuses_buffer() {
        let a = generators::cage_like(40, 7);
        let b: Vec<f64> = (0..40).map(|i| (i as f64) * 0.25).collect();
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.2).cos()).collect();
        let p = BandPartition::uniform_with_overlap(40, 4, 3).unwrap();
        let mut out = Vec::new();
        for l in 0..4 {
            let blocks = LocalBlocks::extract(&a, &b, &p, l).unwrap();
            let range = p.extended_range(l);
            let expected = blocks.local_rhs_with(&b[range], &x).unwrap();
            let range = p.extended_range(l);
            blocks.local_rhs_into(&b[range], &x, &mut out).unwrap();
            assert_eq!(out, expected);
            // shape validation
            assert!(blocks.local_rhs_into(&[1.0], &x, &mut out).is_err());
        }
    }

    #[test]
    fn dependency_parts_of_tridiagonal_are_neighbours() {
        let a = generators::tridiagonal(20, 4.0, -1.0);
        let b = vec![1.0; 20];
        let p = BandPartition::uniform(20, 4).unwrap();
        let b0 = LocalBlocks::extract(&a, &b, &p, 0).unwrap();
        assert_eq!(b0.dependency_parts(&p), vec![1]);
        let b2 = LocalBlocks::extract(&a, &b, &p, 2).unwrap();
        assert_eq!(b2.dependency_parts(&p), vec![1, 3]);
    }

    #[test]
    fn extract_validates_shapes() {
        let a = generators::tridiagonal(10, 4.0, -1.0);
        let p = BandPartition::uniform(10, 2).unwrap();
        assert!(LocalBlocks::extract(&a, &[1.0; 9], &p, 0).is_err());
        let p_wrong = BandPartition::uniform(8, 2).unwrap();
        assert!(LocalBlocks::extract(&a, &[1.0; 10], &p_wrong, 0).is_err());
    }
}
