//! Compressed sparse row (CSR) matrix.
//!
//! CSR is the workhorse format of the stack: the multisplitting drivers use
//! it for the dependency products `DepLeft * XLeft` / `DepRight * XRight`
//! (sparse matrix-vector products over row ranges), and the sparse direct
//! solver converts it to CSC for the column-oriented factorization.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::SparseError;
use msplit_dense::DenseMatrix;

/// A sparse matrix in compressed sparse row format.
///
/// Invariants maintained by every constructor:
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_indices.len() == values.len()`,
/// * within each row, column indices are strictly increasing,
/// * no explicit zero values are stored (entries that cancel are dropped).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f64>,
}

/// Stored-entry threshold above which [`CsrMatrix::par_spmv_into`]
/// distributes rows across rayon worker threads.
pub const PAR_SPMV_MIN_NNZ: usize = 1 << 15;

/// Inner dot product of one CSR row against a dense vector.
///
/// Kept as a free function with `#[inline(always)]` so every SpMV variant
/// (sequential, subtracting, parallel) compiles down to the same tight
/// gather-multiply-accumulate loop.
#[inline(always)]
fn sparse_dot(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&c, &v) in cols.iter().zip(vals) {
        acc += v * x[c];
    }
    acc
}

/// A reusable workspace for repeated sparse matrix-vector products.
///
/// Holds the output buffer across calls so steady-state products perform no
/// heap allocation: the buffer is grown once to the largest row count seen
/// and reused afterwards.
#[derive(Debug, Default, Clone)]
pub struct SpmvWorkspace {
    y: Vec<f64>,
}

impl SpmvWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for matrices with `rows` rows.
    pub fn with_rows(rows: usize) -> Self {
        SpmvWorkspace { y: vec![0.0; rows] }
    }

    /// Computes `A x` into the workspace buffer and returns it as a slice.
    pub fn spmv<'a>(&'a mut self, a: &CsrMatrix, x: &[f64]) -> Result<&'a [f64], SparseError> {
        self.y.resize(a.rows(), 0.0);
        a.spmv_into(x, &mut self.y)?;
        Ok(&self.y)
    }

    /// Like [`SpmvWorkspace::spmv`] but using the row-parallel kernel for
    /// large matrices.
    pub fn par_spmv<'a>(&'a mut self, a: &CsrMatrix, x: &[f64]) -> Result<&'a [f64], SparseError> {
        self.y.resize(a.rows(), 0.0);
        a.par_spmv_into(x, &mut self.y)?;
        Ok(&self.y)
    }
}

impl CsrMatrix {
    /// Creates an empty (all-zero) matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from raw parts, validating the invariants.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::Structure(format!(
                "row_ptr length {} != rows+1 ({})",
                row_ptr.len(),
                rows + 1
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != col_indices.len() {
            return Err(SparseError::Structure(
                "row_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if col_indices.len() != values.len() {
            return Err(SparseError::Structure(
                "col_indices and values lengths differ".to_string(),
            ));
        }
        for r in 0..rows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(SparseError::Structure(format!(
                    "row_ptr not monotone at row {r}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &c in &col_indices[row_ptr[r]..row_ptr[r + 1]] {
                if c >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        rows,
                        cols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::Structure(format!(
                            "column indices not strictly increasing in row {r}"
                        )));
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_indices,
            values,
        })
    }

    /// Converts a COO matrix, summing duplicates and dropping entries that
    /// cancel to exactly zero.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        let (ri, ci, vals) = coo.triplets();

        // Count entries per row (including duplicates), then bucket them.
        let mut counts = vec![0usize; rows];
        for &r in ri {
            counts[r] += 1;
        }
        let mut start = vec![0usize; rows + 1];
        for r in 0..rows {
            start[r + 1] = start[r] + counts[r];
        }
        let nnz_in = vals.len();
        let mut cols_buf = vec![0usize; nnz_in];
        let mut vals_buf = vec![0.0f64; nnz_in];
        let mut next = start.clone();
        for k in 0..nnz_in {
            let r = ri[k];
            let dst = next[r];
            cols_buf[dst] = ci[k];
            vals_buf[dst] = vals[k];
            next[r] += 1;
        }

        // Sort each row by column index and merge duplicates.
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_indices = Vec::with_capacity(nnz_in);
        let mut values = Vec::with_capacity(nnz_in);
        row_ptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            scratch.extend(
                cols_buf[start[r]..start[r + 1]]
                    .iter()
                    .copied()
                    .zip(vals_buf[start[r]..start[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    col_indices.push(c);
                    values.push(sum);
                }
            }
            row_ptr.push(col_indices.len());
        }

        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_indices,
            values,
        }
    }

    /// Builds a CSR matrix from a dense matrix, skipping zero entries.
    pub fn from_dense(a: &DenseMatrix) -> Self {
        let mut coo = CooMatrix::with_capacity(a.rows(), a.cols(), a.rows());
        for i in 0..a.rows() {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v).expect("indices in range by construction");
                }
            }
        }
        Self::from_coo(&coo)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored nonzero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_indices
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns the `(column, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Entry lookup by binary search within the row (O(log row_nnz)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_indices[lo..hi].binary_search(&j) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// The diagonal of the matrix as a vector (missing entries are zero).
    ///
    /// Each row is scanned once (columns are sorted, so the scan stops at the
    /// first column `>= i`) instead of running a binary-search
    /// [`CsrMatrix::get`] per row.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        let mut d = vec![0.0; n];
        for (i, di) in d.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for (&c, &v) in self.col_indices[lo..hi].iter().zip(&self.values[lo..hi]) {
                if c >= i {
                    if c == i {
                        *di = v;
                    }
                    break;
                }
            }
        }
        d
    }

    /// Sparse matrix-vector product `y = A x`.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>, SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.spmv_into(x, &mut y)?;
        Ok(y)
    }

    #[inline]
    fn check_spmv_shapes(&self, x: &[f64], y: &[f64]) -> Result<(), SparseError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(SparseError::ShapeMismatch {
                expected: (self.rows, self.cols),
                found: (y.len(), x.len()),
            });
        }
        Ok(())
    }

    /// Sparse matrix-vector product into a caller-provided buffer.
    ///
    /// The kernel iterates the `row_ptr` windows directly over the raw
    /// column/value slices with the dot product inlined — no iterator
    /// adapters, no per-entry branching, no allocation.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        self.check_spmv_shapes(x, y)?;
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            *yi = sparse_dot(&self.col_indices[lo..hi], &self.values[lo..hi], x);
        }
        Ok(())
    }

    /// Accumulating product `y -= A x`, the kernel behind
    /// `BLoc = BSub - DepLeft * XLeft - DepRight * XRight` in Algorithm 1.
    pub fn spmv_sub_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        self.check_spmv_shapes(x, y)?;
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            *yi -= sparse_dot(&self.col_indices[lo..hi], &self.values[lo..hi], x);
        }
        Ok(())
    }

    /// Dot product of stored row `i` with a dense vector — exactly the
    /// per-row accumulation of [`CsrMatrix::spmv_into`] /
    /// [`CsrMatrix::spmv_sub_into`] (same inlined kernel, same stored order,
    /// so recomputing a single row is **bitwise** what the full product
    /// would have produced for it).
    #[inline]
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        sparse_dot(&self.col_indices[lo..hi], &self.values[lo..hi], x)
    }

    /// Builds a [`ColumnCache`] — the cheap column-major (transpose) view of
    /// this matrix's stored entries, for callers that repeatedly need "which
    /// rows does column `j` touch?" (the delta-RHS formation of the
    /// incremental driver path) without re-walking every row or paying for a
    /// full [`CsrMatrix::transpose`] each time.
    pub fn column_cache(&self) -> ColumnCache {
        let mut col_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_indices {
            col_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut rows = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = col_ptr.clone();
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let dst = next[c];
                rows[dst] = r;
                values[dst] = v;
                next[c] += 1;
            }
        }
        ColumnCache {
            col_ptr,
            rows,
            values,
        }
    }

    /// Row-parallel sparse matrix-vector product into a caller-provided
    /// buffer.
    ///
    /// Rows are distributed in contiguous chunks with rayon once the matrix
    /// carries at least [`PAR_SPMV_MIN_NNZ`] stored entries; smaller products
    /// fall back to the sequential [`CsrMatrix::spmv_into`].  Every row is
    /// still accumulated by the same inlined dot product in the same order,
    /// so the result is **bitwise identical** to the sequential kernel.
    pub fn par_spmv_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        self.check_spmv_shapes(x, y)?;
        if self.nnz() < PAR_SPMV_MIN_NNZ {
            return self.spmv_into(x, y);
        }
        use rayon::prelude::*;
        let rows_per_chunk = (self.rows / 64).max(64);
        y.par_chunks_mut(rows_per_chunk)
            .enumerate()
            .for_each(|(chunk, ys)| {
                let base = chunk * rows_per_chunk;
                for (off, yi) in ys.iter_mut().enumerate() {
                    let i = base + off;
                    let lo = self.row_ptr[i];
                    let hi = self.row_ptr[i + 1];
                    *yi = sparse_dot(&self.col_indices[lo..hi], &self.values[lo..hi], x);
                }
            });
        Ok(())
    }

    /// Transpose of the matrix (also serves as CSR→CSC conversion kernel).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols];
        for &c in &self.col_indices {
            counts[c] += 1;
        }
        let mut row_ptr = vec![0usize; self.cols + 1];
        for c in 0..self.cols {
            row_ptr[c + 1] = row_ptr[c] + counts[c];
        }
        let mut col_indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let dst = next[c];
                col_indices[dst] = r;
                values[dst] = v;
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_indices,
            values,
        }
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        // The transpose's CSR arrays are exactly the CSC arrays of the original.
        CscMatrix::from_transposed_csr(self.rows, self.cols, t.row_ptr, t.col_indices, t.values)
    }

    /// Converts to a dense matrix (intended for tests and small blocks).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                d.set(i, j, v);
            }
        }
        d
    }

    /// Elementwise sum `A + B`.
    pub fn add(&self, other: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SparseError::ShapeMismatch {
                expected: (self.rows, self.cols),
                found: (other.rows, other.cols),
            });
        }
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz() + other.nnz());
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                coo.push(i, j, v).unwrap();
            }
            for (j, v) in other.row(i) {
                coo.push(i, j, v).unwrap();
            }
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
        let mut neg = other.clone();
        neg.scale(-1.0);
        self.add(&neg)
    }

    /// Scales every stored value by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Returns the matrix of absolute values `|A|`.
    pub fn abs(&self) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = v.abs();
        }
        out
    }

    /// Extracts the sub-matrix with rows `r0..r1` and columns `c0..c1`
    /// (half-open ranges).  This is the primitive behind the Figure 1
    /// decomposition: `ASub`, `DepLeft` and `DepRight` are all column slices
    /// of a band of rows.
    pub fn sub_matrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> CsrMatrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "column range out of bounds");
        let sub_rows = r1 - r0;
        let sub_cols = c1 - c0;
        let mut row_ptr = Vec::with_capacity(sub_rows + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in r0..r1 {
            for (j, v) in self.row(i) {
                if j >= c0 && j < c1 {
                    col_indices.push(j - c0);
                    values.push(v);
                }
            }
            row_ptr.push(col_indices.len());
        }
        CsrMatrix {
            rows: sub_rows,
            cols: sub_cols,
            row_ptr,
            col_indices,
            values,
        }
    }

    /// Applies a symmetric permutation `P A P^T` for a square matrix, where
    /// `perm[new] = old` (the row/column placed at position `new`).
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<CsrMatrix, SparseError> {
        if !self.is_square() {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if perm.len() != self.rows {
            return Err(SparseError::ShapeMismatch {
                expected: (self.rows, 1),
                found: (perm.len(), 1),
            });
        }
        // inverse permutation: old -> new
        let mut inv = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for (new_row, &old_row) in perm.iter().enumerate() {
            for (old_col, v) in self.row(old_row) {
                coo.push(new_row, inv[old_col], v).unwrap();
            }
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Estimated memory footprint of the stored matrix, in bytes.
    ///
    /// Used by the grid memory model to decide when a solver "does not fit"
    /// on a machine (the `nem` entries of Table 3 in the paper).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| self.row(i).map(move |(j, v)| (i, j, v)))
    }

    /// Structural + numerical fingerprint of the matrix.
    ///
    /// A 64-bit FNV-1a hash over the shape, the row pointers, the column
    /// indices and the raw IEEE-754 bits of every stored value.  Two matrices
    /// get the same fingerprint iff they are identical CSR matrices (same
    /// sparsity pattern *and* same value bits), so the fingerprint can key a
    /// factorization cache: permuting the matrix or perturbing a single entry
    /// changes the fingerprint, and a cached factorization keyed by it is
    /// guaranteed to belong to this exact matrix.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = crate::fingerprint::Fnv64::new();
        hash.mix(self.rows as u64);
        hash.mix(self.cols as u64);
        for &p in &self.row_ptr {
            hash.mix(p as u64);
        }
        for &c in &self.col_indices {
            hash.mix(c as u64);
        }
        for &v in &self.values {
            hash.mix(v.to_bits());
        }
        hash.finish()
    }
}

/// Column-major view of a [`CsrMatrix`]'s stored entries — a transpose
/// cache built once by [`CsrMatrix::column_cache`] and then queried per
/// column in O(1).
///
/// Within each column the rows appear ascending (the build scans rows in
/// order), which is what the incremental driver relies on when turning
/// changed dependency columns into affected right-hand-side rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnCache {
    col_ptr: Vec<usize>,
    rows: Vec<usize>,
    values: Vec<f64>,
}

impl ColumnCache {
    /// Number of columns covered.
    pub fn num_cols(&self) -> usize {
        self.col_ptr.len().saturating_sub(1)
    }

    /// The stored `(rows, values)` of column `j`, rows ascending.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.rows[lo..hi], &self.values[lo..hi])
    }

    /// The rows with a stored entry in column `j`, ascending.
    pub fn rows_in(&self, j: usize) -> &[usize] {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        &self.rows[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 2 0 1 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 0, 4.0).unwrap();
        coo.push(2, 2, 5.0).unwrap();
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn from_coo_builds_sorted_rows() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_ptr(), &[0, 2, 3, 5]);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 2.0), (2, 1.0)]);
    }

    #[test]
    fn get_and_diagonal() {
        let m = sample();
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.diagonal(), vec![2.0, 3.0, 5.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, 2.0, 3.0];
        let ys = m.spmv(&x).unwrap();
        let yd = d.gemv(&x).unwrap();
        assert_eq!(ys, yd);
    }

    #[test]
    fn spmv_sub_into_accumulates() {
        let m = sample();
        let x = [1.0, 1.0, 1.0];
        let mut y = vec![10.0, 10.0, 10.0];
        m.spmv_sub_into(&x, &mut y).unwrap();
        assert_eq!(y, vec![10.0 - 3.0, 10.0 - 3.0, 10.0 - 9.0]);
    }

    #[test]
    fn spmv_shape_error() {
        let m = sample();
        assert!(m.spmv(&[1.0, 2.0]).is_err());
        let mut y = vec![0.0; 3];
        assert!(m.par_spmv_into(&[1.0, 2.0], &mut y).is_err());
    }

    #[test]
    fn par_spmv_is_bitwise_identical_to_spmv() {
        // Below and above the parallel threshold.
        for n in [50usize, 600] {
            let m = crate::generators::cage_like(n, 9);
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 13) % 17) as f64 * 0.37 - 2.0)
                .collect();
            let mut y_seq = vec![0.0; n];
            let mut y_par = vec![1.0; n];
            m.spmv_into(&x, &mut y_seq).unwrap();
            m.par_spmv_into(&x, &mut y_par).unwrap();
            assert_eq!(y_seq, y_par, "n={n}");
        }
    }

    #[test]
    fn spmv_workspace_reuses_buffer() {
        let m = sample();
        let mut ws = SpmvWorkspace::with_rows(3);
        let x = [1.0, 2.0, 3.0];
        let expected = m.spmv(&x).unwrap();
        assert_eq!(ws.spmv(&m, &x).unwrap(), &expected[..]);
        assert_eq!(ws.par_spmv(&m, &x).unwrap(), &expected[..]);
        let fresh = SpmvWorkspace::new().spmv(&m, &x).unwrap().to_vec();
        assert_eq!(fresh, expected);
    }

    #[test]
    fn diagonal_single_pass_matches_get() {
        // A matrix with rows missing their diagonal and rows whose diagonal
        // is the last stored entry.
        let mut coo = CooMatrix::new(5, 5);
        coo.push(0, 0, 1.5).unwrap();
        coo.push(1, 0, 2.0).unwrap(); // row 1 has no diagonal
        coo.push(2, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.push(3, 4, 5.0).unwrap(); // diagonal missing, entry after it
        coo.push(4, 0, 6.0).unwrap();
        coo.push(4, 4, 7.0).unwrap();
        let m = CsrMatrix::from_coo(&coo);
        let d = m.diagonal();
        let expected: Vec<f64> = (0..5).map(|i| m.get(i, i)).collect();
        assert_eq!(d, expected);
        assert_eq!(d, vec![1.5, 0.0, 4.0, 0.0, 7.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_sub_scale_abs() {
        let m = sample();
        let sum = m.add(&m).unwrap();
        assert_eq!(sum.get(2, 2), 10.0);
        let diff = m.sub(&m).unwrap();
        assert_eq!(diff.nnz(), 0);
        let mut s = m.clone();
        s.scale(-2.0);
        assert_eq!(s.get(0, 0), -4.0);
        assert_eq!(s.abs().get(0, 0), 4.0);
    }

    #[test]
    fn sub_matrix_extracts_block() {
        let m = sample();
        let b = m.sub_matrix(1, 3, 0, 2);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.get(0, 1), 3.0);
        assert_eq!(b.get(1, 0), 4.0);
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn permute_symmetric_reverses_order() {
        let m = sample();
        let p = vec![2usize, 1, 0];
        let pm = m.permute_symmetric(&p).unwrap();
        // new (0,0) is old (2,2)
        assert_eq!(pm.get(0, 0), 5.0);
        assert_eq!(pm.get(0, 2), 4.0);
        assert_eq!(pm.get(2, 0), 1.0);
    }

    #[test]
    fn identity_and_norms() {
        let id = CsrMatrix::identity(4);
        assert_eq!(id.nnz(), 4);
        assert_eq!(id.inf_norm(), 1.0);
        let m = sample();
        assert_eq!(m.inf_norm(), 9.0);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn from_raw_validation() {
        // bad row_ptr length
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // column index out of range
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // unsorted columns
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // valid
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn from_dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d);
        assert_eq!(back, m);
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries.len(), 5);
        assert!(entries.contains(&(2, 2, 5.0)));
    }

    #[test]
    fn fingerprint_is_deterministic_and_clone_stable() {
        let m = sample();
        assert_eq!(m.fingerprint(), m.fingerprint());
        assert_eq!(m.clone().fingerprint(), m.fingerprint());
        // A structurally identical rebuild hashes identically too.
        let rebuilt = CsrMatrix::from_dense(&m.to_dense());
        assert_eq!(rebuilt.fingerprint(), m.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_permuted_matrix() {
        let m = sample();
        let permuted = m.permute_symmetric(&[2, 1, 0]).unwrap();
        assert_ne!(permuted.fingerprint(), m.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_perturbed_values() {
        let m = sample();
        let mut coo = CooMatrix::new(3, 3);
        for (i, j, v) in m.iter() {
            // Perturb a single entry by one ULP-scale amount.
            let v = if (i, j) == (2, 2) { v + 1e-12 } else { v };
            coo.push(i, j, v).unwrap();
        }
        let perturbed = CsrMatrix::from_coo(&coo);
        assert_eq!(perturbed.nnz(), m.nnz());
        assert_ne!(perturbed.fingerprint(), m.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_shape_and_pattern() {
        // Same stored values, different shape.
        let a = CsrMatrix::zeros(3, 4);
        let b = CsrMatrix::zeros(4, 3);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same values, different sparsity pattern (entry moved).
        let mut c1 = CooMatrix::new(2, 2);
        c1.push(0, 0, 1.0).unwrap();
        let mut c2 = CooMatrix::new(2, 2);
        c2.push(1, 1, 1.0).unwrap();
        assert_ne!(
            CsrMatrix::from_coo(&c1).fingerprint(),
            CsrMatrix::from_coo(&c2).fingerprint()
        );
        // Signed zero differs in bits from +0.0 only if stored; stored zeros
        // are dropped, so an empty matrix equals itself.
        assert_eq!(
            CsrMatrix::zeros(5, 5).fingerprint(),
            CsrMatrix::zeros(5, 5).fingerprint()
        );
    }
}
