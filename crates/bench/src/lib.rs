//! Shared helpers for the benchmark harness.
//!
//! The Criterion benches and the `reproduce` binary both need a common
//! experiment scale: small enough that `cargo bench` completes in minutes,
//! large enough that the measured work profiles are not dominated by
//! fixed overheads.

use msplit_core::experiment::ExperimentConfig;

/// Experiment configuration used by the Criterion benches (small scale).
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 0.02,
        min_n: 500,
        tolerance: 1e-8,
        max_iterations: 50_000,
    }
}

/// Experiment configuration used by the `reproduce` binary by default.
pub fn reproduce_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 0.05,
        min_n: 500,
        tolerance: 1e-8,
        max_iterations: 50_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_scaled_down_but_not_degenerate() {
        let bench = bench_config();
        assert!(bench.scale < 1.0);
        assert!(bench.min_n >= 100);
        let repro = reproduce_config();
        assert!(repro.scale >= bench.scale);
        assert_eq!(repro.tolerance, 1e-8);
    }
}
