//! Shared helpers for the benchmark harness.
//!
//! The Criterion benches and the `reproduce` binary both need a common
//! experiment scale: small enough that `cargo bench` completes in minutes,
//! large enough that the measured work profiles are not dominated by
//! fixed overheads.
//!
//! # Place in the runtime architecture
//!
//! In the engine/policy/adapter architecture documented at the top of
//! [`msplit_core`] (see the diagram in `crates/core/src/lib.rs`), this crate
//! stands outside the runtime proper: it scales the
//! [`msplit_core::experiment`] descriptors so the Criterion harnesses and
//! the `reproduce` binary exercise every adapter at a CI-friendly size.

use msplit_core::experiment::ExperimentConfig;
use msplit_dense::{BandMatrix, DenseMatrix};

/// Deterministic pseudo-random dense matrix, diagonally dominant so every
/// direct solver accepts it.  Shared by the kernel-suite Criterion bench and
/// the `perf-report` binary so both measure the **same** inputs (the
/// committed `BENCH_kernels.json` and the interactive bench must not drift).
pub fn dense_dd(n: usize, seed: u64) -> DenseMatrix {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2000) as f64 / 1000.0 - 1.0
    };
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                let v = next();
                a.set(i, j, v);
                row_sum += v.abs();
            }
        }
        a.set(i, i, row_sum + 1.0);
    }
    a
}

/// Diagonally dominant pentadiagonal band matrix (kl = ku = 2), the band
/// kernel workload of the suite.
pub fn penta_band(n: usize) -> BandMatrix {
    let mut b = BandMatrix::zeros(n, 2, 2);
    for i in 0..n {
        b.set(i, i, 8.0);
        for d in 1..=2usize {
            if i >= d {
                b.set(i, i - d, -1.0);
            }
            if i + d < n {
                b.set(i, i + d, -1.0);
            }
        }
    }
    b
}

/// Experiment configuration used by the Criterion benches (small scale).
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 0.02,
        min_n: 500,
        tolerance: 1e-8,
        max_iterations: 50_000,
    }
}

/// Experiment configuration used by the `reproduce` binary by default.
pub fn reproduce_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 0.05,
        min_n: 500,
        tolerance: 1e-8,
        max_iterations: 50_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_workloads_are_well_formed() {
        let a = dense_dd(16, 1);
        for i in 0..16 {
            let off: f64 = (0..16).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i) > off, "row {i} not dominant");
        }
        // Deterministic across calls.
        assert_eq!(a, dense_dd(16, 1));
        let b = penta_band(10);
        assert_eq!(b.order(), 10);
        assert_eq!(b.get(0, 0), 8.0);
        assert_eq!(b.get(2, 0), -1.0);
    }

    #[test]
    fn configs_are_scaled_down_but_not_degenerate() {
        let bench = bench_config();
        assert!(bench.scale < 1.0);
        assert!(bench.min_n >= 100);
        let repro = reproduce_config();
        assert!(repro.scale >= bench.scale);
        assert_eq!(repro.tolerance, 1e-8);
    }
}
