//! `perf-report` — regenerates `BENCH_kernels.json` at the repository root.
//!
//! Times the numeric hot-path kernels (dense LU factorization blocked vs the
//! retained pre-optimization reference, band triangular solve, CSR SpMV, and
//! cold-vs-warm `PreparedSystem::solve_many` serving) plus the **transport**
//! layer (in-process vs TCP-loopback message round-trip latency, and the
//! bytes each synchronous outer iteration puts on the links, from
//! `LinkStats`), the driver-dispatch overhead, and the **serving** fleet
//! (cold vs warm vs coalesced request throughput through a live
//! `msplit-serve` shard, with queue-latency percentiles), and the **krylov**
//! outer loops (stationary sweep vs FGMRES over the same sweep as a
//! preconditioner, on well- and ill-conditioned systems), and writes the
//! results as a small JSON document so successive PRs accumulate a perf
//! trajectory.
//!
//! In `--check` mode every acceptance gate is evaluated; failures are
//! aggregated and reported together, and the process exits non-zero only
//! after the whole report has printed.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin perf-report            # full run, writes JSON
//! cargo run --release --bin perf-report -- --check # tiny sizes, no file
//! ```

use msplit_bench::{dense_dd, penta_band};
use msplit_comm::tcp::{LoopbackMesh, TcpOptions};
use msplit_comm::{InProcTransport, Message, Transport};
use msplit_core::runtime::{IterationWorkspace, NeighborData, RankEngine};
use msplit_core::solver::{ExecutionMode, MultisplittingConfig};
use msplit_core::{Decomposition, MultisplittingSolver, PreparedSystem, WeightingScheme};
use msplit_dense::{BandLu, DenseLu};
use msplit_direct::{SolveScratch, SolverKind, SparseLu, SparseRhs};
use msplit_engine::EngineConfig;
use msplit_serve::{ClientOptions, ServeClient, ServeConfig, SolveServer};
use msplit_sparse::{generators, CsrMatrix, TripletBuilder};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Allowed per-iteration dispatch overhead of the unified `RankEngine` over
/// the hand-inlined loop body (the pre-refactor driver kernel sequence):
/// 2 %, plus a small absolute slack absorbing timer noise on µs-scale steps.
const MAX_DISPATCH_OVERHEAD_PCT: f64 = 2.0;
const DISPATCH_SLACK_US: f64 = 0.5;

/// Serving acceptance gate: warm coalesced throughput must beat cold
/// (factorize-per-request) throughput by at least this factor.  Cold pays a
/// factorization per request; warm coalesced pays one cached triangular
/// sweep per *batch*, so well below 3x means coalescing or the cache broke.
const MIN_COALESCED_OVER_COLD: f64 = 3.0;

/// Sparse-solve acceptance gate: with a right-hand side of at most 2 % of n
/// nonzeros on a factor whose reach stays local, the reachability-based
/// `solve_sparse_into` must beat the dense `solve_into` by at least this
/// factor at n >= 20 000.
const MIN_SPARSE_TRSV_SPEEDUP: f64 = 3.0;

/// Convergence-protocol acceptance gate: at P = 1024 simulated ranks the
/// tree-aggregated lockstep coordinator must handle at least this many times
/// fewer control messages per decision than the flat coordinator (flat is
/// 2·(P−1) per decision; an arity-4 tree is 2·arity, so the real ratio is
/// ~256x — the gate just guards against the tree silently degenerating).
const MIN_TREE_COORDINATOR_REDUCTION: f64 = 4.0;

/// Krylov acceptance gate: on the ill-conditioned convection–diffusion
/// system (n = 4096: a 64×64 grid in single-grid-row bands, Péclet 0.9),
/// FGMRES over the multisplitting-sweep preconditioner must need at least
/// this many times fewer outer iterations than the stationary sweep.
const MIN_FGMRES_ITERATION_ADVANTAGE: f64 = 2.0;

/// Best-of-`reps` wall-clock milliseconds for `f`.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct KernelRecord {
    name: &'static str,
    n: usize,
    /// Milliseconds of the retained pre-optimization kernel, when one exists.
    before_ms: Option<f64>,
    after_ms: f64,
}

impl KernelRecord {
    fn speedup(&self) -> Option<f64> {
        self.before_ms.map(|b| b / self.after_ms)
    }
}

/// One row of the transport table (in-proc vs TCP loopback).
struct TransportRecord {
    name: &'static str,
    world: usize,
    value: f64,
    unit: &'static str,
}

/// One row of the driver-dispatch table: the same per-iteration work through
/// the old inlined loop body vs the unified `RankEngine` adapter path.
struct DriverRecord {
    name: &'static str,
    n: usize,
    inlined_us: f64,
    engine_us: f64,
}

impl DriverRecord {
    fn overhead_pct(&self) -> f64 {
        (self.engine_us - self.inlined_us) / self.inlined_us * 100.0
    }
}

/// One row of the convergence table: a scale-simulated protocol run.
struct ConvergenceRecord {
    protocol: &'static str,
    world: usize,
    converged: bool,
    iterations: u64,
    coordinator_inbox_peak: usize,
    coordinator_msgs_per_decision: f64,
    messages_per_iteration: f64,
}

/// Runs the in-process scale simulator over P ∈ {64, 256, 1024} × the four
/// convergence protocols and returns the rows plus the tree-vs-flat
/// coordinator-load reduction at P = 1024 (the gated claim).
fn convergence_table() -> (Vec<ConvergenceRecord>, f64) {
    use msplit_core::scale::{simulate_ranks, Protocol, ScaleConfig};
    let protocols: [Protocol; 4] = [
        Protocol::Lockstep,
        Protocol::Tree { arity: 4 },
        Protocol::Waves { confirmations: 3 },
        Protocol::Decentralized {
            stability_period: 3,
        },
    ];
    let mut rows = Vec::new();
    let mut flat_1024 = f64::NAN;
    let mut tree_1024 = f64::NAN;
    for world in [64usize, 256, 1024] {
        for protocol in protocols {
            let report = simulate_ranks(&ScaleConfig {
                ranks: world,
                protocol,
                ..Default::default()
            })
            .expect("scale simulation");
            if world == 1024 {
                match protocol {
                    Protocol::Lockstep => flat_1024 = report.coordinator_msgs_per_decision(),
                    Protocol::Tree { .. } => tree_1024 = report.coordinator_msgs_per_decision(),
                    _ => {}
                }
            }
            rows.push(ConvergenceRecord {
                protocol: protocol.label(),
                world,
                converged: report.converged,
                iterations: report.iterations,
                coordinator_inbox_peak: report.coordinator_inbox_peak,
                coordinator_msgs_per_decision: report.coordinator_msgs_per_decision(),
                messages_per_iteration: report.messages_per_iteration(),
            });
        }
    }
    (rows, flat_1024 / tree_1024)
}

/// Measures the per-iteration cost of one rank's Algorithm 1 loop body two
/// ways on the same decomposed system: hand-inlined (the exact kernel
/// sequence the pre-refactor drivers ran: dependency refresh → BLoc assembly
/// → in-place triangular solve → increment norm → iterate copy) and through
/// [`RankEngine::step`].  The difference is the dispatch cost the runtime
/// refactor added.
fn driver_dispatch_overhead(n: usize, steps_per_rep: usize, reps: usize) -> DriverRecord {
    let a = generators::diag_dominant(&generators::DiagDominantConfig {
        n,
        seed: 17,
        ..Default::default()
    });
    let (_, b) = generators::rhs_for_solution(&a, |i| ((i % 7) as f64) - 3.0);
    let d = Decomposition::uniform(&a, &b, 4, 0).expect("decomposition");
    let partition = d.partition().clone();
    let (_, blocks) = d.into_blocks();
    // Part 1: an interior band with both a left and a right neighbour.
    let blk = &blocks[1];
    let solver = SolverKind::SparseLu.build();
    let factor = solver.factorize(&blk.a_sub).expect("factorize");
    let src: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.1 - 0.5).collect();
    let ingest_sources = |neighbor: &mut NeighborData| {
        for part in [0usize, 2usize] {
            let range = partition.extended_range(part);
            neighbor.update(part, 1, range.start, src[range].to_vec());
        }
    };

    // Inlined baseline: the exact kernel sequence the pre-refactor drivers
    // ran each iteration (halo fill → dependency-movement tracking → BLoc
    // assembly → in-place solve → increment norm → iterate copy), on
    // retained buffers with direct calls — no engine, no policy dispatch.
    let mut neighbor = NeighborData::new(&partition, WeightingScheme::OwnerTakes, blk);
    ingest_sources(&mut neighbor);
    let mut x_global = vec![0.0f64; n];
    let mut prev_deps = vec![0.0f64; neighbor.dependency_columns().len()];
    let mut rhs = Vec::new();
    let mut x_sub = vec![0.0f64; blk.size];
    let mut scratch = SolveScratch::new();
    let mut run_inlined = || {
        for _ in 0..steps_per_rep {
            neighbor.fill_dependencies(&mut x_global);
            let mut dep_change = 0.0f64;
            for (slot, &g) in neighbor.dependency_columns().iter().enumerate() {
                dep_change = dep_change.max((x_global[g] - prev_deps[slot]).abs());
                prev_deps[slot] = x_global[g];
            }
            std::hint::black_box(dep_change);
            blk.local_rhs_into(&blk.b_sub, &x_global, &mut rhs)
                .expect("local_rhs_into");
            factor
                .solve_into(&mut rhs, &mut scratch)
                .expect("solve_into");
            let mut inc = 0.0f64;
            for (a, b) in rhs.iter().zip(x_sub.iter()) {
                inc = inc.max((a - b).abs());
            }
            std::hint::black_box(inc);
            x_sub.copy_from_slice(&rhs);
        }
    };

    // Engine path: same system, same factorization, slices ingested once so
    // the dependency fill does equivalent work.
    let mut ws = IterationWorkspace::new();
    let mut engine = RankEngine::single(
        &partition,
        blk,
        &blk.b_sub,
        factor.as_ref(),
        WeightingScheme::OwnerTakes,
        &mut ws,
    );
    // This row isolates *dispatch* overhead: the engine must run the same
    // dense assembly + solve as the inlined body, so the incremental
    // fast path (which would skip the unchanged-dependency steps entirely)
    // is disabled here and measured in its own row instead.
    engine.set_incremental(false);
    for part in [0usize, 2usize] {
        let range = partition.extended_range(part);
        engine.ingest(Message::Solution {
            from: part,
            iteration: 1,
            offset: range.start,
            values: src[range.clone()].to_vec(),
        });
    }
    let mut run_engine = || {
        for _ in 0..steps_per_rep {
            std::hint::black_box(engine.step().expect("engine step"));
        }
    };

    // Interleave the reps (inlined, engine, inlined, engine, …) so clock
    // drift, frequency scaling or a background process biases both sides
    // equally instead of whichever phase ran second; best-of keeps the
    // cleanest rep of each.
    let mut inlined_ms = f64::INFINITY;
    let mut engine_ms = f64::INFINITY;
    run_inlined();
    run_engine();
    for _ in 0..reps {
        let t0 = Instant::now();
        run_inlined();
        inlined_ms = inlined_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        run_engine();
        engine_ms = engine_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    DriverRecord {
        name: "algorithm1_iteration_body",
        n,
        inlined_us: inlined_ms * 1e3 / steps_per_rep as f64,
        engine_us: engine_ms * 1e3 / steps_per_rep as f64,
    }
}

/// A matrix of decoupled diag-dominant `width`-wide diagonal blocks: the
/// factor graph splits into per-block components, so the reach of a sparse
/// right-hand side stays confined to the blocks it touches.
fn block_diag(n: usize, width: usize) -> CsrMatrix {
    let mut builder = TripletBuilder::square(n);
    for i in 0..n {
        let blk = i / width;
        for j in (blk * width)..((blk * width + width).min(n)) {
            let v = if i == j {
                2.0 * width as f64
            } else {
                -1.0 - ((i + j) % 3) as f64 * 0.25
            };
            builder.push(i, j, v).expect("push");
        }
    }
    builder.build_csr()
}

/// Times the reachability-based sparse triangular solve against the dense
/// kernel on the same `SparseLu` factor, with a right-hand side of 2 % of n
/// nonzeros clustered in two bands.  Both paths produce bitwise-identical
/// solutions; the sparse one only walks the reached columns.
fn sparse_trsv_record(n: usize) -> KernelRecord {
    let a = block_diag(n, 32);
    let lu = SparseLu::factorize(&a).expect("sparse factorize");
    let nnz_b = n / 50; // 2 % of n
    let mut rhs = SparseRhs::new(n);
    for k in 0..nnz_b {
        // Two clusters, one in each half of the system.
        let i = if k < nnz_b / 2 {
            n / 10 + k
        } else {
            6 * n / 10 + (k - nnz_b / 2)
        };
        rhs.push(i, ((k % 9) as f64) - 4.0).expect("rhs push");
    }
    let mut scratch = SolveScratch::new();
    let mut x_dense = vec![0.0; n];
    let before_ms = time_ms(10, || {
        rhs.scatter_into(&mut x_dense).expect("scatter");
        lu.solve_into(&mut x_dense, &mut scratch)
            .expect("solve_into");
    });
    let mut x_sparse = vec![0.0; n];
    let mut report = None;
    let after_ms = time_ms(10, || {
        report = Some(
            lu.solve_sparse_into(&rhs, &mut x_sparse, &mut scratch)
                .expect("solve_sparse_into"),
        );
    });
    let report = report.expect("at least one rep ran");
    assert!(
        report.fast_path,
        "clustered 2% RHS must stay under the reach threshold (reach {:.3})",
        report.reach_fraction
    );
    let same = x_dense
        .iter()
        .zip(x_sparse.iter())
        .all(|(d, s)| d.to_bits() == s.to_bits());
    assert!(same, "sparse and dense solves disagree bitwise");
    KernelRecord {
        name: "sparse_trsv",
        n,
        before_ms: Some(before_ms),
        after_ms,
    }
}

/// Measures the steady-state per-iteration cost of a rank whose halo delta
/// stays sparse, with the incremental path on vs off.  The decoupled-block
/// system keeps the delta reach to a handful of unknowns, so the incremental
/// engine pays a few reached columns per step where the dense engine pays a
/// full assembly + triangular sweep.
fn incremental_step_record(n: usize, steps: usize, reps: usize) -> DriverRecord {
    let a = block_diag(n, 4);
    let (_, b) = {
        let ones = vec![1.0; n];
        let ax = a.spmv(&ones).expect("spmv");
        (ones, ax)
    };
    let d = Decomposition::uniform(&a, &b, 2, 0).expect("decomposition");
    let partition = d.partition().clone();
    let (_, blocks) = d.into_blocks();
    let solver = SolverKind::SparseLu.build();
    let factor = solver.factorize(&blocks[0].a_sub).expect("factorize");
    let offset = blocks[1].offset;
    let peer_size = blocks[1].size;
    let peer_values: Vec<Vec<f64>> = (0..2)
        .map(|v| {
            (0..peer_size)
                .map(|j| 0.5 + j as f64 * 1e-4 + v as f64 * 1e-3)
                .collect()
        })
        .collect();

    let measure = |incremental: bool| -> f64 {
        let mut ws = IterationWorkspace::new();
        let mut engine = RankEngine::single(
            &partition,
            &blocks[0],
            &blocks[0].b_sub,
            factor.as_ref(),
            WeightingScheme::OwnerTakes,
            &mut ws,
        );
        engine.set_incremental(incremental);
        let mut run = |iteration_base: u64| {
            for t in 0..steps {
                engine.ingest(Message::Solution {
                    from: 1,
                    iteration: iteration_base + t as u64 + 1,
                    offset,
                    values: peer_values[t % 2].clone(),
                });
                engine.step().expect("engine step");
            }
        };
        run(0);
        let mut best = f64::INFINITY;
        for r in 0..reps {
            let t0 = Instant::now();
            run((r as u64 + 1) * steps as u64);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best * 1e3 / steps as f64
    };

    DriverRecord {
        name: "incremental_halo_delta_step",
        n,
        inlined_us: measure(false),
        engine_us: measure(true),
    }
}

/// One row of the krylov table: one (system, method) measurement.
struct KrylovRecord {
    system: &'static str,
    method: &'static str,
    n: usize,
    outer_iterations: u64,
    wall_ms: f64,
    converged: bool,
}

/// Measures outer-iteration counts and wall clock of the stationary sweep vs
/// FGMRES(m) over the same sweep as a preconditioner, on a well-conditioned
/// system (where the stationary sweep is already fine and FGMRES must merely
/// not embarrass itself) and on the ill-conditioned convection–diffusion
/// system (where the iteration advantage is the gated claim).
///
/// The ill-conditioned size stays at n = 4096 even in `--check`: the gate is
/// an asymptotic claim about the block-Jacobi spectral radius approaching 1,
/// and small grids would not exhibit the contraction collapse.
fn krylov_table(check_mode: bool) -> (Vec<KrylovRecord>, f64) {
    use msplit_core::solver::Method;
    use msplit_sparse::generators::ConvectionDiffusionConfig;

    let mut rows = Vec::new();
    let mut run = |system: &'static str,
                   a: &CsrMatrix,
                   b: &[f64],
                   parts: usize,
                   method: Method,
                   label: &'static str|
     -> u64 {
        let config = MultisplittingConfig {
            parts,
            tolerance: 1e-10,
            max_iterations: 50_000,
            method,
            ..Default::default()
        };
        let prepared = PreparedSystem::prepare(config, a).expect("prepare");
        let mut iterations = 0;
        let mut converged = false;
        let wall_ms = time_ms(2, || {
            let out = prepared.solve(b).expect("krylov-table solve");
            iterations = out.iterations;
            converged = out.converged;
            out
        });
        rows.push(KrylovRecord {
            system,
            method: label,
            n: a.rows(),
            outer_iterations: iterations,
            wall_ms,
            converged,
        });
        iterations
    };

    // Well conditioned: the banded strictly dominant generator the stationary
    // driver was built for.  Informational — both methods converge quickly.
    let well_n = if check_mode { 500 } else { 2_000 };
    let a = generators::diag_dominant(&generators::DiagDominantConfig {
        n: well_n,
        seed: 11,
        ..Default::default()
    });
    let (_, b) = generators::rhs_for_solution(&a, |i| ((i % 7) as f64) - 3.0);
    run("diag_dominant", &a, &b, 8, Method::Stationary, "stationary");
    run(
        "diag_dominant",
        &a,
        &b,
        8,
        Method::Fgmres {
            restart: 30,
            inner_sweeps: 1,
        },
        "fgmres(30)",
    );

    // Ill conditioned: 64x64 convection–diffusion in single-grid-row bands.
    // The block-Jacobi spectral radius sits close to 1 here, so this is the
    // regime the Krylov layer exists for — and the gated claim.
    let a = generators::convection_diffusion(&ConvectionDiffusionConfig {
        k: 64,
        peclet: 0.9,
        skew: 0.0,
        ..Default::default()
    });
    let (_, b) = generators::rhs_for_solution(&a, |i| ((i % 13) as f64) - 6.0);
    let stationary_iters = run(
        "convection_diffusion",
        &a,
        &b,
        64,
        Method::Stationary,
        "stationary",
    );
    let fgmres_iters = run(
        "convection_diffusion",
        &a,
        &b,
        64,
        Method::Fgmres {
            restart: 60,
            inner_sweeps: 1,
        },
        "fgmres(60)",
    );
    (rows, stationary_iters as f64 / fgmres_iters.max(1) as f64)
}

/// One row of the serving table (the networked fleet in `msplit-serve`).
struct ServingRecord {
    name: &'static str,
    value: f64,
    unit: &'static str,
}

/// Measures the solve fleet three ways against one in-process shard: cold
/// requests (distinct matrices, each paying a factorization), warm solo
/// requests (same matrix, strictly sequential, so nothing coalesces), and
/// warm coalesced requests (concurrent clients on the same matrix sharing
/// multi-RHS sweeps).  Queue-latency percentiles come from the
/// `queue_micros` every `SolveResult` carries.
fn serving_table(check_mode: bool) -> (Vec<ServingRecord>, f64, f64) {
    let n = if check_mode { 200 } else { 600 };
    let cold_matrices = if check_mode { 3u64 } else { 6 };
    let warm_reqs = if check_mode { 10 } else { 40 };
    let (threads, solves_per_thread) = if check_mode { (8, 4) } else { (16, 8) };

    let config = MultisplittingConfig {
        parts: 2,
        tolerance: 1e-8,
        ..Default::default()
    };
    let server = SolveServer::start(
        "127.0.0.1:0",
        ServeConfig {
            coalesce_window: std::time::Duration::from_millis(2),
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("start serving shard");
    let addrs = vec![server.local_addr().to_string()];
    let client = ServeClient::new(&addrs, ClientOptions::default()).expect("serve client");

    // Cold: every request is a matrix the shard has never seen, so each one
    // pays decode + factorize + solve.
    let t0 = Instant::now();
    for seed in 0..cold_matrices {
        let a = generators::diag_dominant(&generators::DiagDominantConfig {
            n,
            seed: 1000 + seed,
            ..Default::default()
        });
        let (_, b) = generators::rhs_for_solution(&a, |i| ((i % 7) as f64) - 3.0);
        client.solve(&a, &config, &b).expect("cold solve");
    }
    let cold_rps = cold_matrices as f64 / t0.elapsed().as_secs_f64();

    // Warm solo: one matrix, strictly sequential requests — the cache is hot
    // but each request still waits out its own coalescing window.
    let a = generators::diag_dominant(&generators::DiagDominantConfig {
        n,
        seed: 2000,
        ..Default::default()
    });
    let (_, b) = generators::rhs_for_solution(&a, |i| ((i % 5) as f64) - 2.0);
    client.solve(&a, &config, &b).expect("warming solve");
    let t0 = Instant::now();
    for _ in 0..warm_reqs {
        client.solve(&a, &config, &b).expect("warm solve");
    }
    let warm_solo_rps = warm_reqs as f64 / t0.elapsed().as_secs_f64();

    // Warm coalesced: concurrent clients hammering the same matrix, so
    // requests landing in the same window share one multi-RHS sweep.
    let a = std::sync::Arc::new(a);
    let config = std::sync::Arc::new(config);
    let addrs = std::sync::Arc::new(addrs);
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let a = std::sync::Arc::clone(&a);
            let config = std::sync::Arc::clone(&config);
            let addrs = std::sync::Arc::clone(&addrs);
            std::thread::spawn(move || {
                let client =
                    ServeClient::new(&addrs, ClientOptions::default()).expect("tenant client");
                let mut queue_us = Vec::with_capacity(solves_per_thread);
                let mut coalesced = 0u64;
                for k in 0..solves_per_thread {
                    let (_, b) = generators::rhs_for_solution(&a, move |i| {
                        ((i + t * solves_per_thread + k) % 6) as f64
                    });
                    let sol = client.solve(&a, &config, &b).expect("coalesced solve");
                    queue_us.push(sol.queue_micros);
                    if sol.coalesced > 1 {
                        coalesced += 1;
                    }
                }
                (queue_us, coalesced)
            })
        })
        .collect();
    let mut queue_us: Vec<u64> = Vec::new();
    let mut coalesced_requests = 0u64;
    for w in workers {
        let (q, c) = w.join().expect("tenant thread");
        queue_us.extend(q);
        coalesced_requests += c;
    }
    let total = (threads * solves_per_thread) as f64;
    let warm_coalesced_rps = total / t0.elapsed().as_secs_f64();
    server.shutdown();

    queue_us.sort_unstable();
    let pct = |p: f64| queue_us[((queue_us.len() - 1) as f64 * p) as usize] as f64;
    let records = vec![
        ServingRecord {
            name: "cold_requests_per_s",
            value: cold_rps,
            unit: "req/s",
        },
        ServingRecord {
            name: "warm_solo_requests_per_s",
            value: warm_solo_rps,
            unit: "req/s",
        },
        ServingRecord {
            name: "warm_coalesced_requests_per_s",
            value: warm_coalesced_rps,
            unit: "req/s",
        },
        ServingRecord {
            name: "coalesced_request_share",
            value: coalesced_requests as f64 / total,
            unit: "fraction",
        },
        ServingRecord {
            name: "queue_latency_p50",
            value: pct(0.50),
            unit: "us",
        },
        ServingRecord {
            name: "queue_latency_p99",
            value: pct(0.99),
            unit: "us",
        },
    ];
    (records, cold_rps, warm_coalesced_rps)
}

/// Mean microseconds per message round trip between ranks 0 and 1 of
/// `transport`: rank 1 echoes every solution slice back.
fn roundtrip_us(transport: Arc<dyn Transport>, rounds: usize, payload: usize) -> f64 {
    let echo_side = Arc::clone(&transport);
    let echo = std::thread::spawn(move || {
        for _ in 0..rounds {
            let msg = echo_side.recv(1).expect("echo recv");
            echo_side.send(1, 0, msg).expect("echo send");
        }
    });
    let msg = Message::Solution {
        from: 0,
        iteration: 1,
        offset: 0,
        values: vec![0.5; payload],
    };
    let t0 = Instant::now();
    for _ in 0..rounds {
        transport.send(0, 1, msg.clone()).expect("ping send");
        transport.recv(0).expect("ping recv");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    echo.join().expect("echo thread");
    elapsed * 1e6 / rounds as f64
}

/// Bytes per outer iteration a synchronous solve puts on the links of the
/// given transport (total `LinkStats` bytes over the iteration count).
fn sync_bytes_per_iteration(
    a: &msplit_sparse::CsrMatrix,
    b: &[f64],
    parts: usize,
    transport: Arc<dyn Transport>,
    stats_bytes: impl Fn() -> usize,
) -> f64 {
    let config = MultisplittingConfig {
        parts,
        tolerance: 1e-8,
        mode: ExecutionMode::Synchronous,
        ..Default::default()
    };
    let out = MultisplittingSolver::new(config)
        .solve_with_transport(a, b, transport)
        .expect("sync solve");
    stats_bytes() as f64 / out.iterations.max(1) as f64
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("perf-report: regenerate BENCH_kernels.json at the repo root");
        println!("  --check   run tiny problem sizes and skip the JSON write");
        return;
    }

    let mut records: Vec<KernelRecord> = Vec::new();

    // --- Dense LU factorization: blocked production kernel vs the retained
    // reference (the exact pre-optimization algorithm). ---
    let dense_sizes: &[usize] = if check_mode { &[64] } else { &[128, 512, 1024] };
    for &n in dense_sizes {
        let a = dense_dd(n, 42);
        let reps = if n >= 1024 { 2 } else { 3 };
        let after_ms = time_ms(reps, || DenseLu::factorize(&a).expect("factorize"));
        let before_ms = time_ms(reps, || {
            DenseLu::factorize_reference(&a).expect("factorize")
        });
        records.push(KernelRecord {
            name: "dense_lu_factorize",
            n,
            before_ms: Some(before_ms),
            after_ms,
        });
    }

    // --- Band triangular solve (in place). ---
    let band_n = if check_mode { 2_000 } else { 20_000 };
    let band = penta_band(band_n);
    let lu = BandLu::factorize(&band).expect("band factorize");
    let rhs: Vec<f64> = (0..band_n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let mut x = rhs.clone();
    let after_ms = time_ms(10, || {
        x.copy_from_slice(&rhs);
        lu.solve_into(&mut x).expect("solve_into");
    });
    records.push(KernelRecord {
        name: "band_solve_into",
        n: band_n,
        before_ms: None,
        after_ms,
    });

    // --- Reachability-based sparse triangular solve vs the dense kernel.
    // The acceptance size stays at n = 20_000 even in --check: the gate is
    // an asymptotic claim and small sizes would let the O(n) zero-template
    // copy mask the win.  Factorization of the decoupled blocks is cheap.
    let trsv = sparse_trsv_record(20_000);
    let trsv_speedup = trsv.speedup().expect("sparse_trsv has a dense baseline");
    let (trsv_before, trsv_after) = (trsv.before_ms.unwrap(), trsv.after_ms);
    records.push(trsv);

    // --- CSR SpMV, sequential and row-parallel. ---
    let grid = if check_mode { 40 } else { 200 };
    let a = generators::poisson_2d(grid);
    let n = a.rows();
    let xv: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) * 0.25 - 2.0).collect();
    let mut y = vec![0.0; n];
    let seq_ms = time_ms(10, || a.spmv_into(&xv, &mut y).expect("spmv"));
    records.push(KernelRecord {
        name: "spmv_into",
        n,
        before_ms: None,
        after_ms: seq_ms,
    });
    let par_ms = time_ms(10, || a.par_spmv_into(&xv, &mut y).expect("par_spmv"));
    records.push(KernelRecord {
        name: "par_spmv_into",
        n,
        before_ms: None,
        after_ms: par_ms,
    });

    // --- Cold vs warm batched serving through a prepared system. ---
    let serve_n = if check_mode { 300 } else { 1_200 };
    let batch = 8usize;
    let a = generators::cage_like(serve_n, 10);
    let config = MultisplittingConfig {
        parts: 4,
        tolerance: 1e-8,
        ..Default::default()
    };
    let rhs_cols: Vec<Vec<f64>> = (0..batch as u64)
        .map(|s| generators::rhs_for_solution(&a, move |i| ((i as u64 + s) % 11) as f64 - 5.0).1)
        .collect();
    let cold_ms = time_ms(3, || {
        let prepared = PreparedSystem::prepare(config.clone(), &a).expect("prepare");
        prepared.solve_many(&rhs_cols).expect("solve_many")
    });
    let prepared = PreparedSystem::prepare(config, &a).expect("prepare");
    let warm_ms = time_ms(3, || prepared.solve_many(&rhs_cols).expect("solve_many"));
    records.push(KernelRecord {
        name: "prepared_solve_many_cold",
        n: serve_n,
        before_ms: None,
        after_ms: cold_ms,
    });
    records.push(KernelRecord {
        name: "prepared_solve_many_warm",
        n: serve_n,
        before_ms: Some(cold_ms),
        after_ms: warm_ms,
    });

    // --- Transport: in-proc vs TCP loopback. ---
    let mut transport_records: Vec<TransportRecord> = Vec::new();
    let (rounds, payload) = if check_mode { (200, 64) } else { (2_000, 256) };
    let inproc_rtt = roundtrip_us(InProcTransport::new(2), rounds, payload);
    let mesh = LoopbackMesh::new(2, TcpOptions::default()).expect("loopback mesh");
    let tcp_rtt = roundtrip_us(mesh, rounds, payload);
    transport_records.push(TransportRecord {
        name: "roundtrip_inproc",
        world: 2,
        value: inproc_rtt,
        unit: "us",
    });
    transport_records.push(TransportRecord {
        name: "roundtrip_tcp_loopback",
        world: 2,
        value: tcp_rtt,
        unit: "us",
    });

    let net_n = if check_mode { 200 } else { 800 };
    let parts = 4usize;
    let a = generators::cage_like(net_n, 13);
    let (_, b) = generators::rhs_for_solution(&a, |i| ((i % 7) as f64) - 3.0);
    let inproc = InProcTransport::new(parts);
    let inproc_bytes = {
        let stats_handle = inproc.clone();
        sync_bytes_per_iteration(&a, &b, parts, inproc, move || {
            stats_handle.stats().total_bytes()
        })
    };
    let mesh = LoopbackMesh::new(parts, TcpOptions::default()).expect("loopback mesh");
    let tcp_bytes = {
        let stats_handle = mesh.clone();
        sync_bytes_per_iteration(&a, &b, parts, mesh, move || {
            stats_handle.stats().total_bytes()
        })
    };
    transport_records.push(TransportRecord {
        name: "sync_bytes_per_iteration_inproc",
        world: parts,
        value: inproc_bytes,
        unit: "bytes",
    });
    transport_records.push(TransportRecord {
        name: "sync_bytes_per_iteration_tcp_loopback",
        world: parts,
        value: tcp_bytes,
        unit: "bytes",
    });

    // --- Driver dispatch: old inlined loop body vs the RankEngine adapter
    // path, plus the end-to-end per-iteration cost of the threaded sync
    // adapter (informational). ---
    let (disp_n, disp_steps, disp_reps) = if check_mode {
        (256, 200, 5)
    } else {
        (1024, 400, 7)
    };
    let dispatch = driver_dispatch_overhead(disp_n, disp_steps, disp_reps);
    let (incr_n, incr_steps, incr_reps) = if check_mode {
        (2_000, 200, 3)
    } else {
        (10_000, 400, 5)
    };
    let incr_record = incremental_step_record(incr_n, incr_steps, incr_reps);
    let e2e_n = if check_mode { 240 } else { 960 };
    let a = generators::cage_like(e2e_n, 9);
    let (_, b) = generators::rhs_for_solution(&a, |i| ((i % 6) as f64) - 2.0);
    let sync_solver = MultisplittingSolver::new(MultisplittingConfig {
        parts: 4,
        tolerance: 1e-8,
        mode: ExecutionMode::Synchronous,
        ..Default::default()
    });
    let mut e2e_iters = 1u64;
    let e2e_ms = time_ms(3, || {
        let out = sync_solver.solve(&a, &b).expect("sync solve");
        e2e_iters = out.iterations.max(1);
        out
    });
    let e2e_record = DriverRecord {
        name: "threaded_sync_adapter_end_to_end",
        n: e2e_n,
        inlined_us: f64::NAN,
        engine_us: e2e_ms * 1e3 / e2e_iters as f64,
    };

    // --- Serving: the networked fleet, cold vs warm vs coalesced. ---
    let (serving_records, cold_rps, coalesced_rps) = serving_table(check_mode);

    // --- Convergence protocols at scale (in-process simulation; the full
    // P = 1024 sweep runs in --check too — the gate is the point). ---
    let (convergence_records, tree_reduction_1024) = convergence_table();

    // --- Krylov outer loops: stationary sweep vs FGMRES over the same sweep
    // as a preconditioner (the n = 4096 ill-conditioned gate runs in --check
    // too — the gate is the point). ---
    let (krylov_records, fgmres_advantage) = krylov_table(check_mode);

    // --- Report. ---
    let mut json = String::new();
    json.push_str("{\n  \"suite\": \"kernel_suite\",\n  \"unit\": \"ms (best of reps)\",\n");
    let _ = writeln!(
        json,
        "  \"note\": \"before = retained pre-optimization kernel where one exists (dense reference LU; cold prepare for warm serving)\",",
    );
    json.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        let before = r
            .before_ms
            .map_or("null".to_string(), |v| format!("{v:.3}"));
        let speedup = r
            .speedup()
            .map_or("null".to_string(), |v| format!("{v:.2}"));
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"before_ms\": {}, \"after_ms\": {:.3}, \"speedup\": {}}}{}",
            r.name, r.n, before, r.after_ms, speedup, comma
        );
    }
    json.push_str("  ],\n  \"transport\": [\n");
    for (i, t) in transport_records.iter().enumerate() {
        let comma = if i + 1 == transport_records.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"world\": {}, \"value\": {:.3}, \"unit\": \"{}\"}}{}",
            t.name, t.world, t.value, t.unit, comma
        );
    }
    json.push_str("  ],\n  \"driver\": [\n");
    let _ = writeln!(
        json,
        "    {{\"name\": \"{}\", \"n\": {}, \"inlined_us_per_iteration\": {:.3}, \"engine_us_per_iteration\": {:.3}, \"overhead_pct\": {:.2}}},",
        dispatch.name,
        dispatch.n,
        dispatch.inlined_us,
        dispatch.engine_us,
        dispatch.overhead_pct()
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"{}\", \"n\": {}, \"inlined_us_per_iteration\": null, \"engine_us_per_iteration\": {:.3}, \"overhead_pct\": null}},",
        e2e_record.name, e2e_record.n, e2e_record.engine_us
    );
    // For the incremental row, "inlined" is the always-dense engine and
    // "engine" the incremental one, so a negative overhead is the win.
    let _ = writeln!(
        json,
        "    {{\"name\": \"{}\", \"n\": {}, \"inlined_us_per_iteration\": {:.3}, \"engine_us_per_iteration\": {:.3}, \"overhead_pct\": {:.2}}}",
        incr_record.name,
        incr_record.n,
        incr_record.inlined_us,
        incr_record.engine_us,
        incr_record.overhead_pct()
    );
    json.push_str("  ],\n  \"serving\": [\n");
    for (i, s) in serving_records.iter().enumerate() {
        let comma = if i + 1 == serving_records.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{}",
            s.name, s.value, s.unit, comma
        );
    }
    json.push_str("  ],\n  \"krylov\": [\n");
    for (i, k) in krylov_records.iter().enumerate() {
        let comma = if i + 1 == krylov_records.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"system\": \"{}\", \"method\": \"{}\", \"n\": {}, \
             \"outer_iterations\": {}, \"wall_ms\": {:.3}, \"converged\": {}}}{}",
            k.system, k.method, k.n, k.outer_iterations, k.wall_ms, k.converged, comma
        );
    }
    json.push_str("  ],\n  \"convergence\": [\n");
    for (i, c) in convergence_records.iter().enumerate() {
        let comma = if i + 1 == convergence_records.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    {{\"protocol\": \"{}\", \"world\": {}, \"converged\": {}, \"iterations\": {}, \
             \"coordinator_inbox_peak\": {}, \"coordinator_msgs_per_decision\": {:.2}, \
             \"messages_per_iteration\": {:.2}}}{}",
            c.protocol,
            c.world,
            c.converged,
            c.iterations,
            c.coordinator_inbox_peak,
            c.coordinator_msgs_per_decision,
            c.messages_per_iteration,
            comma
        );
    }
    json.push_str("  ]\n}\n");

    println!("{json}");
    for r in &records {
        if let Some(s) = r.speedup() {
            println!(
                "# {} n={}: {:.3} ms -> {:.3} ms ({s:.2}x)",
                r.name,
                r.n,
                r.before_ms.unwrap(),
                r.after_ms
            );
        }
    }
    println!(
        "# transport: inproc rtt {inproc_rtt:.1} us vs tcp loopback rtt {tcp_rtt:.1} us; \
         sync solve puts {inproc_bytes:.0} (inproc) vs {tcp_bytes:.0} (tcp) bytes/iteration on the links"
    );
    println!(
        "# driver dispatch: inlined {:.3} us/iter vs RankEngine {:.3} us/iter ({:+.2}%); \
         threaded sync adapter end-to-end {:.1} us/iter over {} iterations",
        dispatch.inlined_us,
        dispatch.engine_us,
        dispatch.overhead_pct(),
        e2e_record.engine_us,
        e2e_iters
    );
    // Acceptance gates.  Every gate is evaluated; failures are collected and
    // reported together at the end, and --check (CI) exits non-zero only
    // after the full report has printed — one run surfaces every broken
    // budget instead of stopping at the first.  A regeneration run still
    // writes the JSON below either way so measurements can be inspected.
    let mut gate_failures: Vec<String> = Vec::new();

    // The runtime-unification acceptance gate: the adapter path may cost at
    // most MAX_DISPATCH_OVERHEAD_PCT per iteration over the inlined body
    // (a small absolute slack absorbs timer noise on µs-scale steps).
    let budget_us =
        dispatch.inlined_us * (1.0 + MAX_DISPATCH_OVERHEAD_PCT / 100.0) + DISPATCH_SLACK_US;
    if dispatch.engine_us > budget_us {
        gate_failures.push(format!(
            "driver dispatch: measured {:.3} us/iter, budget {:.3} us/iter \
             ({MAX_DISPATCH_OVERHEAD_PCT}% over the inlined body)",
            dispatch.engine_us, budget_us
        ));
    } else {
        println!(
            "# driver dispatch within budget: {:.3} <= {:.3} us/iter",
            dispatch.engine_us, budget_us
        );
    }
    println!(
        "# incremental halo-delta step n={}: dense {:.3} us/iter vs incremental {:.3} us/iter ({:.2}x)",
        incr_record.n,
        incr_record.inlined_us,
        incr_record.engine_us,
        incr_record.inlined_us / incr_record.engine_us
    );
    // The sparse-solve acceptance gate: a clustered 2% right-hand side on a
    // locally-reachable factor must make the reach-based solve pay off.
    println!(
        "# sparse_trsv n=20000: dense {trsv_before:.3} ms vs sparse {trsv_after:.3} ms ({trsv_speedup:.2}x)"
    );
    if trsv_speedup < MIN_SPARSE_TRSV_SPEEDUP {
        gate_failures.push(format!(
            "sparse_trsv: measured {trsv_speedup:.2}x speedup, \
             required {MIN_SPARSE_TRSV_SPEEDUP}x"
        ));
    } else {
        println!("# sparse_trsv within budget: {trsv_speedup:.2}x >= {MIN_SPARSE_TRSV_SPEEDUP}x");
    }
    println!(
        "# serving: cold {cold_rps:.1} req/s, coalesced {coalesced_rps:.1} req/s \
         ({:.1}x); queue p50/p99 in the serving table",
        coalesced_rps / cold_rps
    );
    // The serving acceptance gate: a multi-tenant fleet only earns its keep
    // if coalesced warm traffic beats factorize-per-request cold traffic by
    // a wide margin.
    if coalesced_rps < MIN_COALESCED_OVER_COLD * cold_rps {
        gate_failures.push(format!(
            "serving: measured warm coalesced {coalesced_rps:.1} req/s, \
             required {MIN_COALESCED_OVER_COLD}x cold ({:.1} req/s)",
            MIN_COALESCED_OVER_COLD * cold_rps
        ));
    } else {
        println!(
            "# serving within budget: {coalesced_rps:.1} >= {:.1} req/s",
            MIN_COALESCED_OVER_COLD * cold_rps
        );
    }

    // The convergence acceptance gate: every protocol converges at every
    // simulated scale, and the tree keeps the coordinator off the hot path.
    let all_converged = convergence_records.iter().all(|c| c.converged);
    if !all_converged {
        gate_failures.push(
            "convergence: a protocol failed to converge in the scale simulation, \
             required all protocols at all scales"
                .to_string(),
        );
    }
    println!(
        "# convergence: tree coordinator reduction at P=1024 is {tree_reduction_1024:.1}x \
         vs flat votes"
    );
    if tree_reduction_1024 < MIN_TREE_COORDINATOR_REDUCTION {
        gate_failures.push(format!(
            "tree coordinator: measured {tree_reduction_1024:.1}x reduction at P=1024, \
             required {MIN_TREE_COORDINATOR_REDUCTION}x"
        ));
    } else {
        println!(
            "# convergence within budget: {tree_reduction_1024:.1}x >= \
             {MIN_TREE_COORDINATOR_REDUCTION}x"
        );
    }

    // The Krylov acceptance gate: on the ill-conditioned convection–diffusion
    // system with single-grid-row bands, FGMRES over the multisplitting sweep
    // must converge in at most 1/MIN_FGMRES_ITERATION_ADVANTAGE of the
    // stationary outer iterations — the headline claim of the acceleration.
    if let Some(k) = krylov_records.iter().find(|k| !k.converged) {
        gate_failures.push(format!(
            "krylov: {} on {} (n={}) did not converge, required all rows converged",
            k.method, k.system, k.n
        ));
    }
    println!(
        "# krylov: FGMRES iteration advantage on ill-conditioned system is {fgmres_advantage:.2}x"
    );
    if fgmres_advantage < MIN_FGMRES_ITERATION_ADVANTAGE {
        gate_failures.push(format!(
            "krylov: measured {fgmres_advantage:.2}x FGMRES iteration advantage, \
             required {MIN_FGMRES_ITERATION_ADVANTAGE}x"
        ));
    } else {
        println!(
            "# krylov within budget: {fgmres_advantage:.2}x >= \
             {MIN_FGMRES_ITERATION_ADVANTAGE}x"
        );
    }

    // Aggregate verdict: every gate has been evaluated; report every broken
    // budget together so one CI run surfaces the full damage.
    if gate_failures.is_empty() {
        println!("# all acceptance gates passed");
    } else {
        eprintln!("# {} acceptance gate(s) FAILED:", gate_failures.len());
        for failure in &gate_failures {
            eprintln!("#   FAIL {failure}");
        }
        if check_mode {
            std::process::exit(1);
        }
    }

    if check_mode {
        println!("# --check: JSON not written");
        return;
    }
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join("BENCH_kernels.json");
    std::fs::write(&path, json).expect("write BENCH_kernels.json");
    println!("# wrote {}", path.display());
}
