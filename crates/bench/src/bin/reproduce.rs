//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p msplit-bench --bin reproduce -- --all
//! cargo run --release -p msplit-bench --bin reproduce -- --table1 --table4
//! cargo run --release -p msplit-bench --bin reproduce -- --all --scale 0.2
//! cargo run --release -p msplit-bench --bin reproduce -- --all --full   # paper-size runs
//! ```

use msplit_bench::reproduce_config;
use msplit_core::experiment::{
    figure3, render_distant, render_overlap, render_perturbation, render_scalability, table1,
    table2, table3, table4, ExperimentConfig,
};

struct Options {
    table1: bool,
    table2: bool,
    table3: bool,
    table4: bool,
    figure3: bool,
    config: ExperimentConfig,
}

fn parse_args() -> Options {
    let mut opts = Options {
        table1: false,
        table2: false,
        table3: false,
        table4: false,
        figure3: false,
        config: reproduce_config(),
    };
    let mut any = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table1" => {
                opts.table1 = true;
                any = true;
            }
            "--table2" => {
                opts.table2 = true;
                any = true;
            }
            "--table3" => {
                opts.table3 = true;
                any = true;
            }
            "--table4" => {
                opts.table4 = true;
                any = true;
            }
            "--figure3" => {
                opts.figure3 = true;
                any = true;
            }
            "--all" => {
                opts.table1 = true;
                opts.table2 = true;
                opts.table3 = true;
                opts.table4 = true;
                opts.figure3 = true;
                any = true;
            }
            "--full" => {
                opts.config = ExperimentConfig::full_scale();
            }
            "--scale" => {
                i += 1;
                let value = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale expects a number");
                        std::process::exit(2);
                    });
                opts.config.scale = value;
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--all | --table1 --table2 --table3 --table4 --figure3] \
                     [--scale FRACTION] [--full]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !any {
        opts.table1 = true;
        opts.table2 = true;
        opts.table3 = true;
        opts.table4 = true;
        opts.figure3 = true;
    }
    opts
}

fn main() {
    let opts = parse_args();
    println!(
        "# multisplitting-direct reproduction (scale = {}, tolerance = {:.0e})",
        opts.config.scale, opts.config.tolerance
    );
    println!(
        "# modelled clusters: cluster1 (20x P4 2.6GHz / 256MB / 100Mb), \
         cluster2 (8x P4 1.7-2.6GHz / 512MB / 100Mb), cluster3 (7+3 machines, 20Mb WAN)"
    );
    println!();

    if opts.table1 {
        match table1(&opts.config) {
            Ok(rows) => println!(
                "{}",
                render_scalability("Table 1: cage10-like on cluster1", &rows)
            ),
            Err(e) => eprintln!("table1 failed: {e}"),
        }
    }
    if opts.table2 {
        match table2(&opts.config) {
            Ok(rows) => println!(
                "{}",
                render_scalability("Table 2: cage11-like on cluster1", &rows)
            ),
            Err(e) => eprintln!("table2 failed: {e}"),
        }
    }
    if opts.table3 {
        match table3(&opts.config) {
            Ok(rows) => println!("{}", render_distant(&rows)),
            Err(e) => eprintln!("table3 failed: {e}"),
        }
    }
    if opts.table4 {
        match table4(&opts.config) {
            Ok(rows) => println!("{}", render_perturbation(&rows)),
            Err(e) => eprintln!("table4 failed: {e}"),
        }
    }
    if opts.figure3 {
        match figure3(&opts.config) {
            Ok(rows) => println!("{}", render_overlap(&rows)),
            Err(e) => eprintln!("figure3 failed: {e}"),
        }
    }
}
