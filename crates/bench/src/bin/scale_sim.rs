//! The `scale-sim` CI lane: 512 simulated ranks through every convergence
//! protocol, asserted in-process.
//!
//! Runs the in-process scale simulator (`msplit_core::scale::simulate_ranks`)
//! at 512 ranks for all four protocols and asserts the ISSUE-level claims:
//!
//! 1. flat lockstep and tree-aggregated lockstep both converge, and their
//!    solutions are **bitwise identical**;
//! 2. the tree coordinator handles ≥ 4× fewer control messages per decision
//!    than the flat coordinator (and its inbox never backs up deeper);
//! 3. the free-running confirmation waves and the decentralized detection
//!    both converge, and their solutions agree within tolerance;
//! 4. every converged solution matches the known model-problem solution.
//!
//! On success the last line printed is `SCALE_SIM_OK` (the CI lane greps for
//! it); each run's summary is appended to `SCALE_SIM_summary.txt` next to
//! the workspace root so a failing lane can upload what the simulator saw.
//!
//! Usage: `scale-sim [ranks]` (default 512).

use msplit_core::scale::{simulate_ranks, Protocol, ScaleConfig, ScaleReport};
use std::io::Write;

const TOLERANCE: f64 = 1e-8;
/// Exact-solution error ceiling: the model problem is solved to `TOLERANCE`
/// on the increment, which leaves the iterate this close to `x[i] = i % 7`.
const MAX_SOLUTION_ERR: f64 = 1e-6;
/// The tentpole's coordinator-load claim, also gated by `perf-report
/// --check` at P = 1024.
const MIN_TREE_COORDINATOR_REDUCTION: f64 = 4.0;

fn summary_path() -> std::path::PathBuf {
    std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .join("SCALE_SIM_summary.txt")
}

fn run(ranks: usize, protocol: Protocol, out: &mut impl Write) -> ScaleReport {
    let report = simulate_ranks(&ScaleConfig {
        ranks,
        protocol,
        tolerance: TOLERANCE,
        record_events: matches!(protocol, Protocol::Lockstep),
        ..Default::default()
    })
    .unwrap_or_else(|e| panic!("{} simulation failed: {e}", protocol.label()));
    println!(
        "{:>14}: converged={} iterations={} sweeps={} coordinator msgs/decision={:.2} inbox peak={}",
        protocol.label(),
        report.converged,
        report.iterations,
        report.sweeps,
        report.coordinator_msgs_per_decision(),
        report.coordinator_inbox_peak
    );
    let _ = writeln!(out, "{}", report.event_summary());
    report
}

fn max_err(x: &[f64]) -> f64 {
    x.iter()
        .enumerate()
        .fold(0.0f64, |m, (i, &v)| m.max((v - (i % 7) as f64).abs()))
}

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("ranks must be an integer"))
        .unwrap_or(512);
    println!("scale-sim: {ranks} simulated ranks per protocol");
    let mut summary = std::fs::File::create(summary_path()).expect("create summary file");

    let flat = run(ranks, Protocol::Lockstep, &mut summary);
    let tree = run(ranks, Protocol::Tree { arity: 4 }, &mut summary);
    let waves = run(ranks, Protocol::Waves { confirmations: 3 }, &mut summary);
    let decen = run(
        ranks,
        Protocol::Decentralized {
            stability_period: 3,
        },
        &mut summary,
    );

    // (1) lockstep family: both converge, bitwise identical.
    assert!(flat.converged, "flat lockstep did not converge");
    assert!(tree.converged, "tree lockstep did not converge");
    assert_eq!(
        flat.iterations, tree.iterations,
        "tree changed the lockstep iteration count"
    );
    assert_eq!(
        flat.x, tree.x,
        "tree votes must leave the lockstep iterates bitwise unchanged"
    );

    // (2) coordinator load: the reduction the tree exists for.
    let reduction = flat.coordinator_msgs_per_decision() / tree.coordinator_msgs_per_decision();
    assert!(
        reduction >= MIN_TREE_COORDINATOR_REDUCTION,
        "tree coordinator reduction {reduction:.1}x < {MIN_TREE_COORDINATOR_REDUCTION}x \
         (flat {:.1}, tree {:.1})",
        flat.coordinator_msgs_per_decision(),
        tree.coordinator_msgs_per_decision()
    );
    assert!(
        tree.coordinator_inbox_peak <= flat.coordinator_inbox_peak,
        "tree inbox peak {} exceeds flat {}",
        tree.coordinator_inbox_peak,
        flat.coordinator_inbox_peak
    );

    // (3)+(4) free-running family: both converge, tolerance-pinned against
    // each other and against the known solution.
    assert!(waves.converged, "confirmation waves did not converge");
    assert!(decen.converged, "decentralized detection did not converge");
    assert!(
        max_err(&flat.x) < MAX_SOLUTION_ERR,
        "flat err {}",
        max_err(&flat.x)
    );
    assert!(
        max_err(&waves.x) < MAX_SOLUTION_ERR,
        "waves err {}",
        max_err(&waves.x)
    );
    assert!(
        max_err(&decen.x) < MAX_SOLUTION_ERR,
        "decen err {}",
        max_err(&decen.x)
    );
    let disagreement = waves
        .x
        .iter()
        .zip(&decen.x)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    assert!(
        disagreement < 2.0 * MAX_SOLUTION_ERR,
        "waves and decentralized disagree by {disagreement:e}"
    );

    println!(
        "tree coordinator reduction at P={ranks}: {reduction:.1}x \
         (flat {:.1} msgs/decision, tree {:.1})",
        flat.coordinator_msgs_per_decision(),
        tree.coordinator_msgs_per_decision()
    );
    println!("SCALE_SIM_OK");
}
