//! Bench of the persistent solve service: cold one-shot solves vs warm
//! cache-hit batched serving on a cage-scale matrix.
//!
//! The printed requests/sec line quantifies what the factorization cache
//! buys a serving workload: a cold request pays decomposition +
//! factorization + iteration, a warm batched request only pays iterations —
//! and amortizes even those over the whole batch through the single-pass
//! `solve_many` path.

use criterion::{criterion_group, criterion_main, Criterion};
use msplit_core::solver::MultisplittingConfig;
use msplit_core::solver::MultisplittingSolver;
use msplit_core::PreparedSystem;
use msplit_engine::{Engine, EngineConfig, RhsPayload, SolveRequest};
use msplit_sparse::generators;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 2_000;
const BATCH: usize = 16;

fn config() -> MultisplittingConfig {
    MultisplittingConfig {
        parts: 4,
        tolerance: 1e-8,
        ..Default::default()
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    let a = Arc::new(generators::cage_like(N, 10));
    let rhs: Vec<Vec<f64>> = (0..BATCH as u64)
        .map(|s| generators::rhs_for_solution(&a, move |i| ((i as u64 + s) % 11) as f64 - 5.0).1)
        .collect();

    // Requests/sec headline: cold one-shot serving vs warm batched serving.
    let solver = MultisplittingSolver::new(config());
    let started = Instant::now();
    for b in rhs.iter() {
        assert!(solver.solve(&a, b).expect("cold solve").converged);
    }
    let cold_rps = BATCH as f64 / started.elapsed().as_secs_f64();

    let engine = Engine::new(EngineConfig::default());
    let warm = engine
        .submit(
            SolveRequest::new(Arc::clone(&a), RhsPayload::Single(rhs[0].clone()))
                .with_config(config()),
        )
        .expect("submit");
    assert!(warm.wait().expect("warmup").converged());
    let started = Instant::now();
    let job = engine
        .submit(
            SolveRequest::new(Arc::clone(&a), RhsPayload::Batch(rhs.clone())).with_config(config()),
        )
        .expect("submit");
    assert!(job.wait().expect("batch").converged());
    let warm_rps = BATCH as f64 / started.elapsed().as_secs_f64();
    println!(
        "engine_throughput: n = {N}, batch = {BATCH}: cold {cold_rps:.1} req/s vs warm cache-hit batch {warm_rps:.1} req/s ({:.1}x)",
        warm_rps / cold_rps
    );
    println!("{}", engine.report());

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.bench_function("cold_single_solve", |bench| {
        let solver = MultisplittingSolver::new(config());
        bench.iter(|| solver.solve(&a, &rhs[0]).expect("cold solve"))
    });
    group.bench_function("warm_single_solve", |bench| {
        let prepared = PreparedSystem::prepare(config(), &a).expect("prepare");
        bench.iter(|| prepared.solve(&rhs[0]).expect("warm solve"))
    });
    group.bench_function("warm_batched_solve_many", |bench| {
        let prepared = PreparedSystem::prepare(config(), &a).expect("prepare");
        bench.iter(|| prepared.solve_many(&rhs).expect("warm batch"))
    });
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
