//! Bench regenerating Table 2: scalability on cluster1 with the cage11-like
//! matrix (4–20 processors).

use criterion::{criterion_group, criterion_main, Criterion};
use msplit_bench::bench_config;
use msplit_core::experiment::{render_scalability, table2};

fn bench_table2(c: &mut Criterion) {
    let cfg = bench_config();
    let rows = table2(&cfg).expect("table 2 generation failed");
    println!(
        "{}",
        render_scalability("Table 2: cage11-like on cluster1", &rows)
    );

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("generate_rows", |b| {
        b.iter(|| table2(&cfg).expect("table 2 generation failed"))
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
