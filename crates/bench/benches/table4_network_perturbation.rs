//! Bench regenerating Table 4: impact of perturbing background flows on the
//! inter-site link of cluster3 for the three solvers.

use criterion::{criterion_group, criterion_main, Criterion};
use msplit_bench::bench_config;
use msplit_core::experiment::{render_perturbation, table4};

fn bench_table4(c: &mut Criterion) {
    let cfg = bench_config();
    let rows = table4(&cfg).expect("table 4 generation failed");
    println!("{}", render_perturbation(&rows));

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("generate_rows", |b| {
        b.iter(|| table4(&cfg).expect("table 4 generation failed"))
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
