//! Bench regenerating Table 1: scalability of distributed SuperLU vs the
//! synchronous/asynchronous multisplitting-LU solvers on cluster1 with the
//! cage10-like matrix.  The generated rows are printed once so `cargo bench`
//! output doubles as the reproduction artefact.

use criterion::{criterion_group, criterion_main, Criterion};
use msplit_bench::bench_config;
use msplit_core::experiment::{render_scalability, table1};

fn bench_table1(c: &mut Criterion) {
    let cfg = bench_config();
    let rows = table1(&cfg).expect("table 1 generation failed");
    println!(
        "{}",
        render_scalability("Table 1: cage10-like on cluster1", &rows)
    );

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("generate_rows", |b| {
        b.iter(|| table1(&cfg).expect("table 1 generation failed"))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
