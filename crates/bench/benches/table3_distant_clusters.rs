//! Bench regenerating Table 3: the three solvers on the heterogeneous local
//! cluster (cluster2) and the two-site distant cluster (cluster3).

use criterion::{criterion_group, criterion_main, Criterion};
use msplit_bench::bench_config;
use msplit_core::experiment::{render_distant, table3};

fn bench_table3(c: &mut Criterion) {
    let cfg = bench_config();
    let rows = table3(&cfg).expect("table 3 generation failed");
    println!("{}", render_distant(&rows));

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("generate_rows", |b| {
        b.iter(|| table3(&cfg).expect("table 3 generation failed"))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
