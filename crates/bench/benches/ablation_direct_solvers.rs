//! Ablation bench: the per-block direct solver choice (sparse / dense / band
//! LU) and the fill-reducing ordering inside the multisplitting wrapper.
//!
//! DESIGN.md calls out the claim that "any sequential direct solver" can be
//! wrapped; this bench quantifies the factorization+solve cost of each choice
//! on a representative diagonal block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msplit_direct::gplu::{ColumnOrdering, SparseLu, SparseLuConfig};
use msplit_direct::SolverKind;
use msplit_sparse::generators::{self, DiagDominantConfig};

fn bench_solver_kinds(c: &mut Criterion) {
    let block = generators::diag_dominant(&DiagDominantConfig {
        n: 2_000,
        offdiag_per_row: 6,
        half_bandwidth: 40,
        dominance_margin: 0.1,
        seed: 3,
    });
    let (_, b) = generators::rhs_for_solution(&block, |i| (i % 5) as f64);

    let mut group = c.benchmark_group("direct_solver_ablation");
    group.sample_size(10);
    for kind in SolverKind::all() {
        group.bench_with_input(
            BenchmarkId::new("factorize_and_solve", format!("{kind:?}")),
            &kind,
            |bencher, &kind| {
                bencher.iter(|| {
                    let solver = kind.build();
                    let factor = solver.factorize(&block).expect("factorization failed");
                    factor.solve(&b).expect("solve failed")
                })
            },
        );
    }
    group.finish();

    let mut orderings = c.benchmark_group("ordering_ablation");
    orderings.sample_size(10);
    for ordering in [
        ColumnOrdering::Natural,
        ColumnOrdering::ReverseCuthillMcKee,
        ColumnOrdering::MinimumDegree,
    ] {
        orderings.bench_with_input(
            BenchmarkId::new("sparse_lu", format!("{ordering:?}")),
            &ordering,
            |bencher, &ordering| {
                bencher.iter(|| {
                    SparseLu::factorize_with(
                        &block,
                        &SparseLuConfig {
                            ordering,
                            ..Default::default()
                        },
                    )
                    .expect("factorization failed")
                })
            },
        );
    }
    orderings.finish();
}

criterion_group!(benches, bench_solver_kinds);
criterion_main!(benches);
