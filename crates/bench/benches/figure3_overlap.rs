//! Bench regenerating Figure 3: impact of the overlap size on the total
//! times, factorization time and iteration counts (cluster3, ρ ≈ 1 matrix).

use criterion::{criterion_group, criterion_main, Criterion};
use msplit_bench::bench_config;
use msplit_core::experiment::{figure3, render_overlap};

fn bench_figure3(c: &mut Criterion) {
    let mut cfg = bench_config();
    cfg.min_n = 1_000;
    let rows = figure3(&cfg).expect("figure 3 generation failed");
    println!("{}", render_overlap(&rows));

    let mut group = c.benchmark_group("figure3");
    group.sample_size(10);
    group.bench_function("generate_series", |b| {
        b.iter(|| figure3(&cfg).expect("figure 3 generation failed"))
    });
    group.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
