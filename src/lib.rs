//! Multisplitting-direct linear solvers for grid environments.
//!
//! This facade crate re-exports the full stack of the reproduction of
//! *"Parallelization of direct algorithms using multisplitting methods in
//! grid environments"* (Bahi & Couturier, IPPS 2005):
//!
//! * [`dense`] / [`sparse`] — linear-algebra substrates (dense/band LU,
//!   CSR/CSC formats, generators, orderings, structural analysis),
//! * [`direct`] — the sparse Gilbert–Peierls LU solver (SuperLU stand-in)
//!   behind the [`direct::DirectSolver`] abstraction,
//! * [`grid`] — the cluster/network models of the paper's three testbeds and
//!   the cost model used to replay executions on them,
//! * [`comm`] — the communication layer: in-process channels and a TCP
//!   full-mesh transport behind one `Transport` trait, the binary wire
//!   codec, and synchronous/asynchronous convergence detection,
//! * [`core`] — the multisplitting-direct solver itself (decomposition,
//!   weighting schemes, synchronous/asynchronous drivers, theory, baselines,
//!   experiment runners),
//! * [`engine`] — the persistent solve service: factorization caching with
//!   single-flight deduplication, a prioritized job queue with backpressure,
//!   and batched multi-RHS serving over prepared systems,
//! * [`serve`] — the engine on the network: a sharded solve fleet with
//!   admission control, cross-request batch coalescing (bitwise-identical
//!   to solo solves) and a consistent-hash routing client.
//!
//! # Quickstart
//!
//! ```
//! use multisplitting::prelude::*;
//! use multisplitting::sparse::generators;
//!
//! // A strictly diagonally dominant system (Proposition 1 guarantees
//! // convergence of the multisplitting iteration).
//! let a = generators::diag_dominant(&generators::DiagDominantConfig {
//!     n: 500,
//!     ..Default::default()
//! });
//! let (x_true, b) = generators::rhs_for_solution(&a, |i| (i % 10) as f64);
//!
//! let outcome = MultisplittingSolver::builder()
//!     .parts(4)
//!     .solver_kind(SolverKind::SparseLu)
//!     .tolerance(1e-8)
//!     .build()
//!     .solve(&a, &b)
//!     .expect("the system satisfies the convergence hypotheses");
//!
//! assert!(outcome.converged);
//! let err = outcome
//!     .x
//!     .iter()
//!     .zip(&x_true)
//!     .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
//! assert!(err < 1e-6);
//! ```

pub use msplit_comm as comm;
pub use msplit_core as core;
pub use msplit_dense as dense;
pub use msplit_direct as direct;
pub use msplit_engine as engine;
pub use msplit_grid as grid;
pub use msplit_serve as serve;
pub use msplit_sparse as sparse;

/// One-stop imports for typical usage.
pub mod prelude {
    pub use msplit_core::baseline::{DistributedDirectBaseline, SequentialDirectBaseline};
    pub use msplit_core::experiment::{self, ExperimentConfig};
    pub use msplit_core::launcher::{DistributedOutcome, Launcher, LauncherConfig};
    pub use msplit_core::perf_model::{replay_async, replay_sync, ProblemScaling};
    pub use msplit_core::solver::{
        BatchSolveOutcome, ExecutionMode, Method, MultisplittingConfig, MultisplittingSolver,
        SolveOutcome,
    };
    pub use msplit_core::theory::SplittingAnalysis;
    pub use msplit_core::weighting::WeightingScheme;
    pub use msplit_core::{Decomposition, PreparedSystem};
    pub use msplit_direct::{DirectSolver, SolverKind};
    pub use msplit_engine::{
        Engine, EngineConfig, EngineReport, JobHandle, JobOutcome, Priority, RhsPayload,
        SolveRequest,
    };
    pub use msplit_grid::cluster::{cluster1, cluster2, cluster3, Grid};
    pub use msplit_grid::perf::CostModel;
    pub use msplit_serve::{ClientOptions, ServeClient, ServeConfig, ServeSolution, SolveServer};
}
