//! `msplit-worker` — one rank of a distributed multisplitting solve.
//!
//! Spawned by [`multisplitting::core::Launcher`] (or by hand) with a job
//! directory and a rank:
//!
//! ```text
//! msplit-worker --job /tmp/msplit-job-1234-0 --rank 2
//! ```
//!
//! The worker loads the shipped system (`system.mtx` + `rhs.vec`), rebuilds
//! the same deterministic band decomposition every other rank builds,
//! extracts its own blocks, joins the TCP mesh described by `job.cfg` (the
//! handshake pins the matrix fingerprint) and runs the per-rank distributed
//! driver.  Its extended-range solution slice and run metadata land back in
//! the job directory for the launcher to gather.

use multisplitting::comm::tcp::{BoundTcpTransport, TcpOptions};
use multisplitting::core::distributed::{receive_sources, run_rank, RankOptions};
use multisplitting::core::launcher::{self, JobSpec, RankMeta};
use multisplitting::core::{CoreError, Decomposition, MultisplittingSolver};
use multisplitting::sparse::io as sparse_io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    job: PathBuf,
    rank: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut job = None;
    let mut rank = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--job" => job = Some(PathBuf::from(it.next().ok_or("--job needs a path")?)),
            "--rank" => {
                rank = Some(
                    it.next()
                        .ok_or("--rank needs a number")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad rank: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "msplit-worker: one rank of a distributed multisplitting solve\n\
                     usage: msplit-worker --job <job-dir> --rank <rank>\n\
                     The job directory must contain job.cfg, system.mtx and rhs.vec\n\
                     (written by the Launcher; see the `distributed_loopback` example)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args {
        job: job.ok_or("missing --job <dir>")?,
        rank: rank.ok_or("missing --rank <rank>")?,
    })
}

fn run(job_dir: &Path, rank: usize) -> Result<(), CoreError> {
    let spec = JobSpec::load(job_dir)?;
    let world = spec.world_size();
    if rank >= world {
        return Err(CoreError::Distributed(format!(
            "rank {rank} out of range for a {world}-rank job"
        )));
    }
    if spec.config.parts != world {
        return Err(CoreError::Distributed(format!(
            "job.cfg declares {} parts but {} addresses",
            spec.config.parts, world
        )));
    }

    // Load and verify the shipped system: the fingerprint guards against a
    // torn or stale matrix file before any socket opens.
    let a = sparse_io::read_matrix_market(job_dir.join(launcher::job_files::MATRIX))
        .map_err(CoreError::Sparse)?;
    let b = sparse_io::read_vector_file(job_dir.join(launcher::job_files::RHS))
        .map_err(CoreError::Sparse)?;
    if a.fingerprint() != spec.fingerprint {
        return Err(CoreError::Distributed(format!(
            "matrix fingerprint {:#x} does not match job fingerprint {:#x}",
            a.fingerprint(),
            spec.fingerprint
        )));
    }

    // Rebuild the deterministic decomposition every rank agrees on, keep
    // only this rank's blocks.
    let solver = MultisplittingSolver::new(spec.config.clone());
    let decomposition: Decomposition = solver.decompose(&a, &b)?;
    let send_targets = decomposition.send_targets();
    let sources = receive_sources(&send_targets);
    let partition = decomposition.partition().clone();
    let (_, mut blocks) = decomposition.into_blocks();
    let blk = blocks.swap_remove(rank);
    drop(blocks);

    // Join the mesh: bind this rank's listener, then full-mesh connect with
    // the fingerprint-pinned handshake.
    let bound = BoundTcpTransport::bind(rank, &spec.addrs[rank]).map_err(CoreError::Comm)?;
    let transport = bound
        .connect(
            &spec.addrs,
            TcpOptions {
                fingerprint: spec.fingerprint,
                connect_timeout: spec.peer_timeout,
                delay: spec.link_delay()?,
                ..Default::default()
            },
        )
        .map_err(CoreError::Comm)?;
    println!(
        "worker rank {rank}/{world}: joined mesh, band rows {:?}, {} send targets",
        partition.extended_range(rank),
        send_targets[rank].len()
    );

    let outcome = run_rank(
        &partition,
        &blk,
        &send_targets[rank],
        &sources[rank],
        &spec.config,
        transport,
        &RankOptions {
            peer_timeout: spec.peer_timeout,
            ..Default::default()
        },
    )?;

    launcher::store_rank_result(
        job_dir,
        rank,
        &RankMeta {
            iterations: outcome.iterations,
            converged: outcome.converged,
            last_increment: outcome.last_increment,
            wall_seconds: outcome.wall_seconds,
        },
        &outcome.x_local,
    )?;
    println!(
        "worker rank {rank}/{world}: {} after {} iterations (last increment {:.3e}, {:.3}s)",
        if outcome.converged {
            "converged"
        } else {
            "did NOT converge"
        },
        outcome.iterations,
        outcome.last_increment,
        outcome.wall_seconds
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("msplit-worker: {msg} (try --help)");
            return ExitCode::from(2);
        }
    };
    match run(&args.job, args.rank) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("msplit-worker rank {}: {e}", args.rank);
            ExitCode::FAILURE
        }
    }
}
