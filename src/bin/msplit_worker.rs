//! `msplit-worker` — one rank of a distributed multisplitting solve.
//!
//! Spawned by [`multisplitting::core::Launcher`] (or by hand) with a job
//! directory and a rank:
//!
//! ```text
//! msplit-worker --job /tmp/msplit-job-1234-0 --rank 2
//! ```
//!
//! The worker loads the shipped system (`system.mtx` + `rhs.vec`), rebuilds
//! the same deterministic band decomposition every other rank builds,
//! extracts its own blocks, joins the TCP mesh described by `job.cfg` (the
//! handshake pins the matrix fingerprint) and runs the per-rank distributed
//! driver.  Its extended-range solution slice and run metadata land back in
//! the job directory for the launcher to gather.

use multisplitting::comm::tcp::{BoundTcpTransport, TcpOptions};
use multisplitting::core::distributed::{receive_sources, run_rank, CheckpointConfig, RankOptions};
use multisplitting::core::launcher::{self, JobSpec, RankMeta};
use multisplitting::core::{CoreError, Decomposition, MultisplittingSolver};
use multisplitting::sparse::io as sparse_io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    job: PathBuf,
    rank: usize,
    resume_at: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut job = None;
    let mut rank = None;
    let mut resume_at = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--job" => job = Some(PathBuf::from(it.next().ok_or("--job needs a path")?)),
            "--rank" => {
                rank = Some(
                    it.next()
                        .ok_or("--rank needs a number")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad rank: {e}"))?,
                )
            }
            "--resume-at" => {
                resume_at = Some(
                    it.next()
                        .ok_or("--resume-at needs an iteration")?
                        .parse::<u64>()
                        .map_err(|e| format!("bad resume iteration: {e}"))?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "msplit-worker: one rank of a distributed multisplitting solve\n\
                     usage: msplit-worker --job <job-dir> --rank <rank> [--resume-at <iter>]\n\
                     The job directory must contain job.cfg, system.mtx and rhs.vec\n\
                     (written by the Launcher; see the `distributed_loopback` example).\n\
                     With --resume-at the worker restores its snapshot of that outer\n\
                     iteration (ckpt_r<rank>_i<iter>.bin in the job directory) before\n\
                     iterating — see docs/fault-tolerance.md."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args {
        job: job.ok_or("missing --job <dir>")?,
        rank: rank.ok_or("missing --rank <rank>")?,
        resume_at,
    })
}

fn run(job_dir: &Path, rank: usize, resume_at: Option<u64>) -> Result<(), CoreError> {
    let spec = JobSpec::load(job_dir)?;
    let world = spec.world_size();
    if rank >= world {
        return Err(CoreError::Distributed(format!(
            "rank {rank} out of range for a {world}-rank job"
        )));
    }
    if spec.config.parts != world {
        return Err(CoreError::Distributed(format!(
            "job.cfg declares {} parts but {} addresses",
            spec.config.parts, world
        )));
    }

    // Load and verify the shipped system: the fingerprint guards against a
    // torn or stale matrix file before any socket opens.
    let a = sparse_io::read_matrix_market(job_dir.join(launcher::job_files::MATRIX))
        .map_err(CoreError::Sparse)?;
    let b = sparse_io::read_vector_file(job_dir.join(launcher::job_files::RHS))
        .map_err(CoreError::Sparse)?;
    if a.fingerprint() != spec.fingerprint {
        return Err(CoreError::Distributed(format!(
            "matrix fingerprint {:#x} does not match job fingerprint {:#x}",
            a.fingerprint(),
            spec.fingerprint
        )));
    }

    // Rebuild the deterministic decomposition every rank agrees on, keep
    // only this rank's blocks.
    let solver = MultisplittingSolver::new(spec.config.clone());
    let decomposition: Decomposition = solver.decompose(&a, &b)?;
    let send_targets = decomposition.send_targets();
    let sources = receive_sources(&send_targets);
    let partition = decomposition.partition().clone();
    let (_, mut blocks) = decomposition.into_blocks();
    let blk = blocks.swap_remove(rank);
    drop(blocks);

    // Join the mesh: bind this rank's listener, then full-mesh connect with
    // the fingerprint-pinned handshake.
    let bound = BoundTcpTransport::bind(rank, &spec.addrs[rank]).map_err(CoreError::Comm)?;
    let transport = bound
        .connect(
            &spec.addrs,
            TcpOptions {
                fingerprint: spec.fingerprint,
                connect_timeout: spec.peer_timeout,
                delay: spec.link_delay()?,
                ..Default::default()
            },
        )
        .map_err(CoreError::Comm)?;
    println!(
        "worker rank {rank}/{world}: joined mesh, band rows {:?}, {} send targets",
        partition.extended_range(rank),
        send_targets[rank].len()
    );

    arm_die_at_drill(job_dir, rank);

    // Fault-tolerance wiring from the job spec: periodic snapshots (also
    // needed to resume), an optional global warm start shipped as x0.vec,
    // and the configured failure/rebalance policies.
    let checkpoint = (spec.checkpoint_every > 0 || resume_at.is_some()).then(|| CheckpointConfig {
        dir: job_dir.to_path_buf(),
        every: spec.checkpoint_every,
        fingerprint: spec.fingerprint,
    });
    let x0_path = job_dir.join(launcher::job_files::INITIAL_GUESS);
    let initial_guess = if x0_path.exists() {
        Some(sparse_io::read_vector_file(&x0_path).map_err(CoreError::Sparse)?)
    } else {
        None
    };
    if let Some(iteration) = resume_at {
        println!("worker rank {rank}/{world}: resuming from snapshot of iteration {iteration}");
    }

    let outcome = run_rank(
        &partition,
        &blk,
        &send_targets[rank],
        &sources[rank],
        &spec.config,
        transport,
        &RankOptions {
            peer_timeout: spec.peer_timeout,
            failure: spec.failure,
            checkpoint,
            resume_at,
            initial_guess,
            rebalance: spec.rebalance,
            ..Default::default()
        },
    )?;

    launcher::store_rank_result(
        job_dir,
        rank,
        &RankMeta {
            iterations: outcome.iterations,
            converged: outcome.converged,
            last_increment: outcome.last_increment,
            wall_seconds: outcome.wall_seconds,
            reshape: outcome.reshape,
        },
        &outcome.x_local,
    )?;
    println!(
        "worker rank {rank}/{world}: {} after {} iterations (last increment {:.3e}, {:.3}s)",
        if outcome.converged {
            "converged"
        } else if let Some(reason) = outcome.reshape {
            match reason {
                multisplitting::core::ReshapeReason::RankDeath(dead) => {
                    println!("worker rank {rank}/{world}: requesting reshape, rank {dead} died");
                }
                multisplitting::core::ReshapeReason::SpeedDrift => {
                    println!("worker rank {rank}/{world}: requesting reshape, speeds drifted");
                }
            }
            "stopped for reshape"
        } else {
            "did NOT converge"
        },
        outcome.iterations,
        outcome.last_increment,
        outcome.wall_seconds
    );
    Ok(())
}

/// Fault-injection drill: `MSPLIT_DIE_AT=<rank>:<iteration>` makes that rank
/// abort (as if its machine died) once its own snapshots reach the given
/// outer iteration.  The watchdog reads the published `ckpt_r<rank>_i*.bin`
/// files, so the drill needs `checkpoint_every > 0`; the abort leaves no
/// result files behind — exactly what a SIGKILL mid-solve looks like to the
/// launcher and the surviving ranks.  See docs/fault-tolerance.md.
fn arm_die_at_drill(job_dir: &Path, rank: usize) {
    let Ok(spec) = std::env::var("MSPLIT_DIE_AT") else {
        return;
    };
    let Some((die_rank, die_iter)) = spec.split_once(':') else {
        eprintln!("worker rank {rank}: ignoring malformed MSPLIT_DIE_AT '{spec}'");
        return;
    };
    let (Ok(die_rank), Ok(die_iter)) = (die_rank.parse::<usize>(), die_iter.parse::<u64>()) else {
        eprintln!("worker rank {rank}: ignoring malformed MSPLIT_DIE_AT '{spec}'");
        return;
    };
    if die_rank != rank {
        return;
    }
    let dir = job_dir.to_path_buf();
    std::thread::spawn(move || loop {
        if let Ok(by_rank) = multisplitting::core::checkpoint::scan(&dir) {
            if let Some(&latest) = by_rank.get(&rank).and_then(|iters| iters.last()) {
                if latest >= die_iter {
                    eprintln!(
                        "worker rank {rank}: MSPLIT_DIE_AT drill aborting at snapshot {latest}"
                    );
                    std::process::abort();
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    });
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("msplit-worker: {msg} (try --help)");
            return ExitCode::from(2);
        }
    };
    match run(&args.job, args.rank, args.resume_at) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("msplit-worker rank {}: {e}", args.rank);
            ExitCode::FAILURE
        }
    }
}
